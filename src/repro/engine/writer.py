"""Sharded fleet export: verifiable manifests, checkpoints and resume.

``generate_sharded`` reduces a fleet to statistics; this module *exports*
one beyond a single process.  The host index space is split into
contiguous runs of RNG blocks, one per shard; each worker process writes
its run to a segment file (CSV rows or NPZ columns) and the parent records
a JSON manifest with per-segment sha256 digests, block ranges and row
ranges.

Two segment layouts share the manifest schema:

``layout="shard"`` (:func:`export_fleet`)
    One segment per shard — the compact archival layout.
``layout="block"`` (:func:`export_fleet_blocks`)
    One segment per RNG block, plus periodic reducer-state checkpoints,
    so a killed export loses at most ``checkpoint_every`` blocks of work:
    :func:`resume_export` scans the partial manifest and the shard
    checkpoints, verifies digests, restores reducer state through the
    ``to_state``/``from_state`` contract and regenerates only the missing
    blocks — producing a manifest, payload bytes and statistics identical
    to an uninterrupted run (the per-block ``SeedSequence.spawn`` contract
    makes regenerated blocks byte-identical, and checkpoint cadence is a
    run parameter so sketch compression points line up too).
    :func:`compact_export` merges a completed block layout back into the
    per-shard layout byte-identically (CSV).

Because segments cover contiguous block ranges and blocks own the random
streams (the :mod:`~repro.engine.streaming` determinism contract), the
byte concatenation of the CSV segments in manifest order is identical to
the *row payload* a single-process export of the same ``(parameters,
date, size, seed)`` fleet writes — for *any* shard count.  Segments carry
no CSV header (it is recorded once in the manifest's ``header`` field);
prepend it to the concatenation to reproduce a ``fleet --out`` file byte
for byte.  The manifest pins the equivalence with two digests:

``payload_sha256``
    sha256 over the segment files' bytes, concatenated in manifest order
    (for CSV this is the digest of the single-process row payload).
``fleet_sha256``
    the format-independent per-block row-digest chain of
    :func:`~repro.engine.streaming.fleet_digest`.

``verify_manifest`` re-hashes the segment files against the manifest and
is surfaced as ``fleet verify`` in the CLI.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import io
import json
import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.engine.csvfmt import encode_csv_rows
from repro.engine.pool import BlockBuffer, create_block_buffer, pool_map
from repro.engine.reduce import ChunkedFold, ReducerFactory, ReducerSet
from repro.engine.retry import WRITE_RETRY
from repro.faults.injector import fire as _fire
from repro.faults.sites import (
    SITE_BLOCK_DONE,
    SITE_BLOCK_WRITE,
    SITE_CHECKPOINT_FSYNC,
    SITE_CHECKPOINT_WRITE,
    SITE_MANIFEST_WRITE,
    SITE_SEGMENT_WRITE,
)
from repro.engine.sharding import (
    FleetStatistics,
    _resolve_factories,
    _when_as_float,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    population_digest,
)
from repro.engine.table import (
    HOST_CSV_FMT,
    HOST_CSV_HEADER,
    HOST_SCHEMA,
    TableSchema,
    block_schema,
    generator_schema,
)
from repro.hosts.population import RESOURCE_LABELS
from repro.stats.state import StateError

#: Manifest schema version.  Bump only on changes a version-1 reader of
#: *this* module cannot tolerate; fields with dataclass defaults
#: (``bytes``, ``layout``, ``checkpoint_every``) are version-1-compatible
#: additions — current readers accept manifests written without them, and
#: bumping would wrongly reject every previously published manifest.
MANIFEST_VERSION = 1

#: The columnar binary format: one contiguous ``.npy`` array per resource
#: column (see :func:`read_columnar_export`).  Unlike ``npz``, plain
#: ``.npy`` bytes are deterministic (no zip timestamps), so columnar
#: payload digests pin like CSV ones.
COLUMNAR_FORMAT = "npz-columnar"

#: Supported segment formats.
FORMATS = ("csv", "npz", COLUMNAR_FORMAT)

#: Formats a *per-shard or per-block row-segment* writer can produce;
#: the columnar layout has its own whole-column writer.
ROW_SEGMENT_FORMATS = ("csv", "npz")


#: Rows rendered per encoder call in :func:`write_population_csv` —
#: bounds peak string memory and keeps each call's working set cache-sized.
_CSV_WRITE_CHUNK = 65536


def write_population_csv(population, handle) -> None:
    """Append a population's rows to an open text or binary handle.

    Rendering goes through the vectorised
    :func:`~repro.engine.csvfmt.encode_csv_rows` encoder — byte-identical
    to the ``np.savetxt`` form this replaced (the export goldens pin it),
    several times faster.
    """
    matrix = population.to_matrix()
    csv_fmt = block_schema(population).csv_fmt
    text = isinstance(handle, io.TextIOBase) or (
        not isinstance(handle, (io.RawIOBase, io.BufferedIOBase))
        and getattr(handle, "encoding", None) is not None
    )
    for lo in range(0, matrix.shape[0], _CSV_WRITE_CHUNK):
        data = encode_csv_rows(matrix[lo : lo + _CSV_WRITE_CHUNK], csv_fmt)
        handle.write(data.decode("ascii") if text else data)


def _hash_file_into(path: str, *hashes) -> None:
    """Stream a file through one or more hash objects in 1 MiB pieces.

    Verification-oriented: the write paths hash bytes *as they produce
    them*, so this re-read only runs where a single hash must span bytes
    several processes wrote (multi-shard payload digests), on resume
    (checking blocks an interrupted run left behind) and in
    :func:`verify_manifest`.
    """
    with open(path, "rb") as handle:
        for piece in iter(lambda: handle.read(1 << 20), b""):
            for digest in hashes:
                digest.update(piece)


@dataclass(frozen=True)
class SegmentRecord:
    """One segment file (a shard's run, or a single block) within an export.

    ``bytes`` is the exact file size; ``-1`` marks manifests written
    before the field existed, where the size check is skipped.
    """

    path: str
    shard: int
    block_lo: int
    block_hi: int
    row_lo: int
    row_hi: int
    sha256: str
    bytes: int = -1


@dataclass(frozen=True)
class FleetManifest:
    """The verifiable description of a sharded fleet export."""

    version: int
    format: str
    size: int
    when: float
    entropy: str
    spawn_key: "tuple[int, ...]"
    shards: int
    block_size: int
    header: str
    payload_sha256: str
    fleet_sha256: str
    segments: "tuple[SegmentRecord, ...]" = field(default_factory=tuple)
    #: ``"shard"`` (one segment per worker) or ``"block"`` (one per RNG
    #: block, the resumable layout).
    layout: str = "shard"
    #: Reducer-checkpoint cadence of a block-layout run (0 = none).
    checkpoint_every: int = 0

    def to_json(self) -> str:
        payload = asdict(self)
        payload["segments"] = [asdict(s) for s in self.segments]
        payload["spawn_key"] = list(self.spawn_key)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetManifest":
        payload = json.loads(text)
        segments = tuple(SegmentRecord(**s) for s in payload.pop("segments"))
        payload["spawn_key"] = tuple(payload["spawn_key"])
        return cls(segments=segments, **payload)

    def save(self, path: str) -> None:
        data = (self.to_json() + "\n").encode("utf-8")
        _fire(SITE_MANIFEST_WRITE, path=path, data=data)
        with open(path, "wb") as handle:
            handle.write(data)

    @classmethod
    def load(cls, path: str) -> "FleetManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def shard_block_ranges(n_blocks: int, shards: int) -> "list[tuple[int, int]]":
    """Split ``[0, n_blocks)`` into ``shards`` contiguous, balanced runs.

    Contiguity is what makes segment concatenation equal the sequential
    stream — round-robin placement (as the statistics fan-out uses) would
    interleave rows.  Every run differs in length by at most one block.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, max(1, n_blocks))
    base, extra = divmod(n_blocks, shards)
    ranges: "list[tuple[int, int]]" = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _segment_name(shard: int, fmt: str) -> str:
    return f"segment-{shard:04d}.{fmt}"


def _write_segment(payload: tuple):
    """Worker: generate blocks ``[block_lo, block_hi)`` and write one segment.

    Returns ``(shard, file_sha256, block_digests)``; module-level so it
    pickles under fork and spawn alike.
    """
    generator, when, size, root, shard, block_lo, block_hi, fmt, out_dir = payload
    schema = generator_schema(generator)
    seeds = block_seeds(root, size)
    path = os.path.join(out_dir, _segment_name(shard, fmt))
    digests: "list[tuple[int, bytes]]" = []
    file_hash = hashlib.sha256()

    try:
        if fmt == "csv":
            with open(path, "wb") as handle:
                for index in range(block_lo, block_hi):
                    lo = index * RNG_BLOCK_SIZE
                    block = generator.generate(
                        when,
                        min(RNG_BLOCK_SIZE, size - lo),
                        np.random.default_rng(seeds[index]),
                    )
                    digests.append((index, bytes.fromhex(population_digest(block))))
                    # The vectorised encoder reproduces the historical
                    # np.savetxt bytes exactly, so segment bytes stay
                    # identical to the CLI's sequential export; hashing the
                    # in-memory data as it is written spares a re-read.
                    data = encode_csv_rows(block.to_matrix(), schema.csv_fmt)
                    _fire(SITE_SEGMENT_WRITE, path=path)
                    handle.write(data)
                    file_hash.update(data)
        elif fmt == "npz":
            # Preallocate the segment's columns and fill block by block, so
            # peak working memory stays one block above the (unavoidable for a
            # single .npy entry) segment arrays rather than 2x the segment.
            row_lo = min(block_lo * RNG_BLOCK_SIZE, size)
            row_hi = min(block_hi * RNG_BLOCK_SIZE, size)
            columns = {
                label: np.empty(row_hi - row_lo) for label in schema.labels
            }
            for index in range(block_lo, block_hi):
                lo = index * RNG_BLOCK_SIZE
                block = generator.generate(
                    when,
                    min(RNG_BLOCK_SIZE, size - lo),
                    np.random.default_rng(seeds[index]),
                )
                digests.append((index, bytes.fromhex(population_digest(block))))
                offset = lo - row_lo
                _fire(SITE_SEGMENT_WRITE, path=path)
                for label in schema.labels:
                    columns[label][offset : offset + len(block)] = block.column(label)
            np.savez(path, **columns)
            _hash_file_into(path, file_hash)
        else:
            raise ValueError(
                f"unknown segment format {fmt!r}; supported: {ROW_SEGMENT_FORMATS}"
            )
    except BaseException:
        # A worker dying mid-segment must not leave a half-written file
        # for the next export (or a verify) to trip over.  SIGKILL still
        # leaves one behind — describe_export_dir names it then.
        _remove_quiet(path)
        raise

    return shard, file_hash.hexdigest(), digests


def export_fleet(
    generator,
    when: "_dt.date | float",
    size: int,
    rng: "int | np.random.SeedSequence | np.random.Generator | None",
    out_dir: str,
    shards: int = 1,
    fmt: str = "csv",
    manifest_name: str = "manifest.json",
    start_method: "str | None" = None,
) -> FleetManifest:
    """Export a fleet as per-shard segments plus a manifest.

    ``shards`` workers each write one contiguous-block segment; the
    manifest (written to ``out_dir/manifest_name``) records per-segment
    sha256 digests, block and row ranges, and the two fleet digests
    described in the module docstring.  NPZ files embed zip metadata, so
    only CSV segments carry the byte-concatenation guarantee; the
    ``fleet_sha256`` row-digest chain identifies the fleet in either
    format.

    ``fmt=`` :data:`COLUMNAR_FORMAT` switches to the columnar binary
    layout (one contiguous ``.npy`` per resource column, written by the
    parent from worker rows handed over shared memory) — see
    :func:`read_columnar_export` for the decode side.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if fmt not in FORMATS:
        raise ValueError(f"unknown segment format {fmt!r}; supported: {FORMATS}")
    root = as_seed_sequence(rng)
    os.makedirs(out_dir, exist_ok=True)
    if fmt == COLUMNAR_FORMAT:
        return _export_fleet_columnar(
            generator, when, size, root, out_dir, shards, manifest_name,
            start_method,
        )
    n_blocks = block_count(size)
    ranges = shard_block_ranges(n_blocks, shards)
    payloads = [
        (generator, when, size, root, shard, lo, hi, fmt, out_dir)
        for shard, (lo, hi) in enumerate(ranges)
    ]

    in_process = len(payloads) == 1
    if in_process:
        results = [_write_segment(payloads[0])]
    else:
        results = pool_map(_write_segment, payloads, len(payloads), start_method)
    results.sort(key=lambda item: item[0])

    # The payload digest spans every segment's bytes in manifest order.
    # With one segment it *is* that segment's digest (hashed as the bytes
    # were written); only a multi-shard export needs the verify-style
    # re-read, because a single sha256 cannot be assembled from the
    # per-worker digests.
    payload_hash = hashlib.sha256()
    segments: "list[SegmentRecord]" = []
    all_digests: "list[tuple[int, bytes]]" = []
    for (shard, file_sha, digests), (lo, hi) in zip(results, ranges):
        name = _segment_name(shard, fmt)
        path = os.path.join(out_dir, name)
        if not in_process:
            _hash_file_into(path, payload_hash)
        segments.append(
            SegmentRecord(
                path=name,
                shard=shard,
                block_lo=lo,
                block_hi=hi,
                row_lo=min(lo * RNG_BLOCK_SIZE, size),
                row_hi=min(hi * RNG_BLOCK_SIZE, size),
                sha256=file_sha,
                bytes=os.path.getsize(path),
            )
        )
        all_digests.extend(digests)

    manifest = FleetManifest(
        version=MANIFEST_VERSION,
        format=fmt,
        size=size,
        when=_when_as_float(when),
        entropy=str(root.entropy),
        spawn_key=tuple(int(k) for k in root.spawn_key),
        shards=len(ranges),
        block_size=RNG_BLOCK_SIZE,
        header=generator_schema(generator).csv_header if fmt == "csv" else "",
        payload_sha256=segments[0].sha256 if in_process else payload_hash.hexdigest(),
        fleet_sha256=combine_block_digests(all_digests),
        segments=tuple(segments),
    )
    manifest.save(os.path.join(out_dir, manifest_name))
    return manifest


# -- columnar binary export --------------------------------------------------


class _HashingWriter:
    """File-like tee: forwards every write and folds the bytes into one
    or more running hashes, so column files are digested as they are
    written rather than re-read."""

    def __init__(self, handle, *hashes):
        self._handle = handle
        self._hashes = hashes

    def write(self, data) -> int:
        self._handle.write(data)
        for digest in self._hashes:
            digest.update(data)
        return len(data)


def _column_name(index: int, label: str) -> str:
    return f"column-{index}-{label}.npy"


def _fill_columnar_rows(payload: tuple):
    """Worker: generate blocks ``[block_lo, block_hi)`` into the shared
    row matrix (or a local one where shared memory is unavailable).

    ``handle`` is a :class:`~repro.engine.pool.BlockBuffer` attach token
    for the parent's ``(size, n_resources)`` matrix — rows are written in
    place at their absolute offsets and nothing but the small digest list
    returns through the pool.  With ``handle=None`` (pickling fallback,
    or the in-process single-shard path) the worker materialises its own
    row range and returns it as the third tuple element.
    """
    generator, when, size, root, shard, block_lo, block_hi, handle = payload
    seeds = block_seeds(root, size)
    row_lo = min(block_lo * RNG_BLOCK_SIZE, size)
    row_hi = min(block_hi * RNG_BLOCK_SIZE, size)
    buffer = None
    if handle is not None:
        buffer = BlockBuffer.attach(handle)
        target = buffer.array
    else:
        target = np.empty((row_hi - row_lo, generator_schema(generator).width))
    digests: "list[tuple[int, bytes]]" = []
    try:
        for index in range(block_lo, block_hi):
            lo = index * RNG_BLOCK_SIZE
            block = generator.generate(
                when,
                min(RNG_BLOCK_SIZE, size - lo),
                np.random.default_rng(seeds[index]),
            )
            matrix = block.to_matrix()
            # Same bytes population_digest hashes — reusing the stacked
            # matrix spares a second column_stack per block.
            digests.append((index, hashlib.sha256(matrix.tobytes()).digest()))
            at = lo if handle is not None else lo - row_lo
            target[at : at + len(block)] = matrix
    finally:
        if buffer is not None:
            buffer.close()
    return shard, digests, None if handle is not None else target


def _export_fleet_columnar(
    generator, when, size, root, out_dir, shards, manifest_name, start_method
) -> FleetManifest:
    """Write a fleet as one contiguous ``.npy`` file per resource column.

    Workers generate contiguous block ranges straight into one
    shared-memory row matrix (:class:`~repro.engine.pool.BlockBuffer`;
    pickled row slabs where shared memory is unavailable), then the
    parent serialises each column once, hashing the bytes as they are
    written.  ``.npy`` v1.0 bytes are a pure function of dtype, shape
    and data, so ``payload_sha256`` pins the columnar export exactly as
    it pins CSV — and is identical for every shard count.  The
    manifest's ``header`` records the column order (the CSV header
    names); each segment's ``shard`` field is the column index.
    """
    schema = generator_schema(generator)
    n_blocks = block_count(size)
    ranges = shard_block_ranges(n_blocks, shards)
    buffer = None
    handle = None
    if len(ranges) > 1:
        buffer = create_block_buffer((size, schema.width))
        handle = None if buffer is None else buffer.handle()
    payloads = [
        (generator, when, size, root, shard, lo, hi, handle)
        for shard, (lo, hi) in enumerate(ranges)
    ]
    try:
        if len(payloads) == 1:
            results = [_fill_columnar_rows(payloads[0])]
        else:
            results = pool_map(
                _fill_columnar_rows, payloads, len(payloads), start_method
            )
        results.sort(key=lambda item: item[0])
        if buffer is not None:
            matrix = buffer.array
        elif len(results) == 1:
            matrix = results[0][2]
        else:
            # Pickling fallback: stitch the returned row slabs together.
            matrix = np.empty((size, schema.width))
            for (_, _, slab), (lo, hi) in zip(results, ranges):
                matrix[min(lo * RNG_BLOCK_SIZE, size):
                       min(hi * RNG_BLOCK_SIZE, size)] = slab

        payload_hash = hashlib.sha256()
        segments: "list[SegmentRecord]" = []
        for column, label in enumerate(schema.labels):
            name = _column_name(column, label)
            path = os.path.join(out_dir, name)
            file_hash = hashlib.sha256()
            with open(path, "wb") as out:
                np.lib.format.write_array(
                    _HashingWriter(out, file_hash, payload_hash),
                    np.ascontiguousarray(matrix[:, column]),
                    version=(1, 0),
                )
            segments.append(
                SegmentRecord(
                    path=name,
                    shard=column,
                    block_lo=0,
                    block_hi=n_blocks,
                    row_lo=0,
                    row_hi=size,
                    sha256=file_hash.hexdigest(),
                    bytes=os.path.getsize(path),
                )
            )
    finally:
        if buffer is not None:
            buffer.unlink()

    all_digests = [entry for _, digests, _ in results for entry in digests]
    manifest = FleetManifest(
        version=MANIFEST_VERSION,
        format=COLUMNAR_FORMAT,
        size=size,
        when=_when_as_float(when),
        entropy=str(root.entropy),
        spawn_key=tuple(int(k) for k in root.spawn_key),
        shards=len(ranges),
        block_size=RNG_BLOCK_SIZE,
        header=schema.csv_header,
        payload_sha256=payload_hash.hexdigest(),
        fleet_sha256=combine_block_digests(all_digests),
        segments=tuple(segments),
        layout="columnar",
    )
    manifest.save(os.path.join(out_dir, manifest_name))
    return manifest


def read_columnar_export(manifest_path: str) -> "tuple[FleetManifest, dict]":
    """Decode a columnar export: ``(manifest, {label: column ndarray})``.

    Validates the manifest's format, the per-column file names against
    the canonical :data:`~repro.hosts.population.RESOURCE_LABELS` order
    and every decoded array's shape, raising :class:`ValueError` on any
    mismatch.  Byte integrity is :func:`verify_manifest`'s job; this
    reader checks *structure* so a verified export always decodes.
    """
    manifest = FleetManifest.load(manifest_path)
    if manifest.format != COLUMNAR_FORMAT:
        raise ValueError(
            f"manifest {manifest_path} is a {manifest.format!r} export, "
            f"not {COLUMNAR_FORMAT!r}"
        )
    if manifest.header == HOST_CSV_HEADER:
        labels: "tuple[str, ...]" = RESOURCE_LABELS
    else:
        # Scenario exports: the manifest header orders the columns and the
        # segment file names carry the labels (column-<i>-<label>.npy).
        labels = tuple(
            segment.path[len(f"column-{index}-"):-len(".npy")]
            if segment.path.startswith(f"column-{index}-")
            and segment.path.endswith(".npy")
            else ""
            for index, segment in enumerate(manifest.segments)
        )
        if "" in labels:
            raise ValueError(
                f"columnar manifest {manifest_path} has a segment that is "
                "not the expected file for column its position names"
            )
        if len(labels) != len(manifest.header.strip("\n").split(",")):
            raise ValueError(
                f"columnar manifest {manifest_path} lists {len(labels)} "
                "segment(s); expected one per header column"
            )
    if len(manifest.segments) != len(labels):
        raise ValueError(
            f"columnar manifest {manifest_path} lists "
            f"{len(manifest.segments)} segment(s); expected one per "
            f"resource column {labels}"
        )
    base = os.path.dirname(os.path.abspath(manifest_path))
    columns: "dict[str, np.ndarray]" = {}
    for index, (segment, label) in enumerate(zip(manifest.segments, labels)):
        if segment.path != _column_name(index, label):
            raise ValueError(
                f"columnar manifest {manifest_path} segment {segment.path!r} "
                f"is not the expected file for column {label!r}"
            )
        array = np.load(os.path.join(base, segment.path), allow_pickle=False)
        if array.shape != (manifest.size,):
            raise ValueError(
                f"column {label!r} decodes to shape {array.shape}; expected "
                f"({manifest.size},)"
            )
        columns[label] = array
    return manifest, columns


# -- resumable block-layout export ------------------------------------------
#
# The distributed backend reuses this layer's building blocks for its own
# plan/checkpoint files (`distributed-plan.json` + the per-lease log):
# `_write_json_atomic`, `_load_json`, `_remove_quiet`,
# `_generator_fingerprint` and the `_read_matching_block` re-verification
# all serve both resume paths, so the two crash-recovery formats cannot
# drift in how they persist, validate, or distrust on-disk state.

#: The partial-manifest file a resumable export writes before any segment;
#: its presence (without a final manifest) marks an interrupted run.
PLAN_NAME = "manifest.partial.json"

#: Schema version of plan and shard-checkpoint payloads.
CHECKPOINT_STATE_VERSION = 1


@dataclass
class BlockExportResult:
    """Outcome of a block-layout export or resume.

    ``statistics`` carries the run's merged reducers (``None`` only when
    :func:`resume_export` found the export already finalised — the
    checkpoints holding reducer state are removed on success).
    ``resumed_blocks`` counts blocks restored from checkpoints rather
    than generated (0 on an uninterrupted run).
    """

    manifest: FleetManifest
    statistics: "FleetStatistics | None"
    resumed_blocks: int


def _block_name(index: int, fmt: str) -> str:
    return f"block-{index:06d}.{fmt}"


def _checkpoint_name(shard: int) -> str:
    return f"checkpoint-{shard:04d}.json"


def _write_json_atomic(
    path: str, payload: dict, fault_site: "str | None" = None
) -> None:
    """Write JSON via a temp file + rename, so a kill never half-writes it.

    ``fault_site`` marks the write as a *checkpoint* write: it becomes an
    injection site, and the temp file is fsynced before the rename so a
    checkpoint named durable actually is (plain plan/metrics writes skip
    the barrier — losing one costs nothing a rerun doesn't fix).
    """
    tmp = path + ".tmp"
    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    if fault_site is not None:
        _fire(fault_site, path=tmp, data=data)
    with open(tmp, "wb") as handle:
        handle.write(data)
        if fault_site is not None:
            handle.flush()
            _fire(SITE_CHECKPOINT_FSYNC)
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def _load_json(path: str, kind: str) -> dict:
    """Read a plan/checkpoint file, mapping any failure to a StateError."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise StateError(f"cannot read {kind} {path}: {error}")
    if not isinstance(payload, dict):
        raise StateError(f"{kind} {path} is not a JSON object")
    return payload


def _remove_quiet(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def describe_export_dir(out_dir: str) -> "str | None":
    """An actionable hint about what a non-empty export directory holds.

    The CLI appends this to its refusal to export into a non-empty
    ``--out-dir``, so "the directory is not empty" becomes "that is your
    own interrupted export — here is the flag that finishes it".
    Returns ``None`` when the leftovers look like nothing this engine
    wrote.
    """
    try:
        entries = set(os.listdir(out_dir))
    except OSError:
        return None
    if PLAN_NAME in entries:
        return (
            "this looks like an interrupted resumable export — pass "
            "--resume to finish it, or --force to start over"
        )
    # The distributed module owns this name; a literal here avoids
    # importing the transport stack just to classify a directory
    # (test_faults pins the two spellings together).
    if "distributed-plan.json" in entries:
        return (
            "this looks like an interrupted distributed export — pass "
            "--backend distributed --resume to finish it, or --force to "
            "start over"
        )
    if "manifest.json" in entries:
        return (
            "this looks like a completed export — verify it with `fleet "
            "verify`, choose a fresh --out-dir, or pass --force to "
            "overwrite it"
        )
    if any(entry.startswith(("segment-", "block-")) for entry in entries):
        return (
            "these look like partial segments from an export that died "
            "mid-write (no resume plan survives); delete the directory "
            "or pass --force to overwrite them"
        )
    return None


def _generator_fingerprint(generator) -> "str | None":
    """sha256 of the generator's parameter JSON (None if it has none).

    Pinned into the export plan so a resume with different model
    parameters fails loudly instead of silently splicing two fleets into
    one self-consistent-looking manifest.
    """
    to_json = getattr(getattr(generator, "parameters", None), "to_json", None)
    if to_json is None:
        return None
    return hashlib.sha256(to_json().encode("utf-8")).hexdigest()


def _write_block_file(path: str, block, fmt: str) -> "tuple[str, int, bytes]":
    """Write one block's segment file; return ``(sha256 hex, size, bytes)``.

    The block is rendered in memory first, so the digest (and the caller's
    running payload hash) comes from the bytes as they are written rather
    than a second read of the file.  Module-level so the crash-injection
    tests can monkeypatch a fault in (and so it pickles for the worker
    pool).
    """
    schema = block_schema(block)
    if fmt == "csv":
        data = encode_csv_rows(block.to_matrix(), schema.csv_fmt)
    elif fmt == "npz":
        columns = {
            label: np.asarray(block.column(label), dtype=float)
            for label in schema.labels
        }
        buffer = io.BytesIO()
        np.savez(buffer, **columns)
        data = buffer.getvalue()
    else:
        raise ValueError(
            f"unknown segment format {fmt!r}; supported: {ROW_SEGMENT_FORMATS}"
        )

    def _attempt() -> None:
        _fire(SITE_BLOCK_WRITE, path=path, data=data)
        with open(path, "wb") as handle:
            handle.write(data)

    try:
        # Transient I/O (a momentary ENOSPC/EIO, a hiccuping network
        # mount) gets a short, bounded second chance before the export
        # dies; a persistent failure still surfaces fast, with the
        # partial file cleaned up and named in the error.
        WRITE_RETRY.call(
            _attempt, retry_on=(OSError,), describe=f"writing block segment {path}"
        )
    except BaseException:
        _remove_quiet(path)
        raise
    return hashlib.sha256(data).hexdigest(), len(data), data


def _read_matching_block(path: str, record: SegmentRecord) -> "bytes | None":
    """A checkpointed block file's bytes, or ``None`` if it no longer
    matches its segment record (missing, resized or hash-flipped).

    Blocks are bounded at :data:`~repro.engine.streaming.RNG_BLOCK_SIZE`
    rows, so reading one whole is cheap — and returning the verified bytes
    lets the resuming worker fold them straight into its running payload
    hash instead of hashing the file a second time.
    """
    if not os.path.exists(path):
        return None
    if record.bytes >= 0 and os.path.getsize(path) != record.bytes:
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    if hashlib.sha256(data).hexdigest() != record.sha256:
        return None
    return data


def _generate_block(generator, when, size, seeds, index):
    lo = index * RNG_BLOCK_SIZE
    return generator.generate(
        when, min(RNG_BLOCK_SIZE, size - lo), np.random.default_rng(seeds[index])
    )


def _write_block_shard(payload: tuple):
    """Worker: write blocks ``[block_lo, block_hi)`` as per-block segments.

    Reduces every block into the shard's :class:`ReducerSet` and, every
    ``checkpoint_every`` blocks (and at the end of the range), atomically
    writes a checkpoint carrying the completed segment records, the block
    digests and the serialized reducer state.  A restart from that
    checkpoint continues bit-identically: the reducer state round-trips
    exactly, and regenerated blocks are byte-identical by the
    ``SeedSequence.spawn`` contract.

    ``checkpoint`` (when resuming) must describe this exact shard range;
    recorded block files are re-verified against their digests and — being
    deterministic — simply rewritten if missing or corrupt, without
    touching the restored reducer state.  ``fault_after`` (tests/CI only)
    raises after this worker has written that many new blocks.
    """
    (
        generator,
        when,
        size,
        root,
        shard,
        block_lo,
        block_hi,
        fmt,
        out_dir,
        checkpoint_every,
        chunk_size,
        factories,
        checkpoint,
        fault_after,
    ) = payload
    seeds = block_seeds(root, size)
    reducers = ReducerSet.from_factories(factories)
    records: "list[SegmentRecord]" = []
    digests: "list[tuple[int, bytes]]" = []
    # Runs alongside the writes: sha256 over this shard's block bytes in
    # block order.  For a single-shard run this *is* the manifest's
    # payload digest, so the parent never re-reads the segments.
    shard_payload = hashlib.sha256()
    start = block_lo
    restored = 0

    if checkpoint is not None:
        reducers = ReducerSet.from_state(checkpoint["reducers"])
        for record_payload, digest in zip(
            checkpoint["segments"], checkpoint["digests"]
        ):
            record = SegmentRecord(**record_payload)
            path = os.path.join(out_dir, record.path)
            data = _read_matching_block(path, record)
            if data is None:
                block = _generate_block(generator, when, size, seeds, record.block_lo)
                # Regeneration must reproduce the checkpointed rows exactly;
                # failing fast here beats finishing an expensive resume
                # whose manifest then fails `fleet verify`.  The row digest
                # is format-independent, so it guards npz rewrites too.
                if population_digest(block) != digest:
                    raise StateError(
                        f"regenerated {record.path} does not reproduce its "
                        f"checkpointed row digest; the resume environment "
                        "generates a different fleet than the interrupted run"
                    )
                sha, nbytes, data = _write_block_file(path, block, fmt)
                # Same rows, but the *file* may differ for npz (zip
                # metadata is not byte-stable) — record what is on disk.
                record = SegmentRecord(
                    **{**asdict(record), "sha256": sha, "bytes": nbytes}
                )
            shard_payload.update(data)
            records.append(record)
            digests.append((record.block_lo, bytes.fromhex(digest)))
        start = block_lo + len(records)
        restored = len(records)

    # Reducer updates are batched through the shared ChunkedFold (the same
    # accumulation the statistics fan-out uses).  Flush points are a
    # deterministic function of the block indices alone — every checkpoint
    # boundary flushes, and between boundaries the batch grows by fixed
    # block sizes — so an uninterrupted run and a resumed run fold
    # identical chunks and stay bit-identical.
    fold = ChunkedFold(reducers, chunk_size)

    def write_checkpoint() -> None:
        fold.flush()
        _write_json_atomic(
            os.path.join(out_dir, _checkpoint_name(shard)),
            fault_site=SITE_CHECKPOINT_WRITE,
            payload={
                "kind": "FleetShardCheckpoint",
                "state_version": CHECKPOINT_STATE_VERSION,
                "shard": shard,
                "block_lo": block_lo,
                "block_hi": block_hi,
                "blocks_done": len(records),
                "segments": [asdict(record) for record in records],
                "digests": [digest.hex() for _, digest in digests],
                "reducers": reducers.to_state(),
            },
        )

    written = 0
    for index in range(start, block_hi):
        block = _generate_block(generator, when, size, seeds, index)
        name = _block_name(index, fmt)
        sha, nbytes, data = _write_block_file(os.path.join(out_dir, name), block, fmt)
        shard_payload.update(data)
        records.append(
            SegmentRecord(
                path=name,
                shard=shard,
                block_lo=index,
                block_hi=index + 1,
                row_lo=min(index * RNG_BLOCK_SIZE, size),
                row_hi=min((index + 1) * RNG_BLOCK_SIZE, size),
                sha256=sha,
                bytes=nbytes,
            )
        )
        digests.append((index, bytes.fromhex(population_digest(block))))
        fold.add(block)
        done = index + 1 - block_lo
        if checkpoint_every and (
            done % checkpoint_every == 0 or index + 1 == block_hi
        ):
            write_checkpoint()
        written += 1
        _fire(SITE_BLOCK_DONE)
        if fault_after is not None and written >= fault_after:
            raise RuntimeError(
                f"injected fault after {written} block(s) in shard {shard}"
            )
    fold.flush()
    return shard, records, reducers, digests, restored, shard_payload.hexdigest()


def export_fleet_blocks(
    generator,
    when: "_dt.date | float",
    size: int,
    rng: "int | np.random.SeedSequence | np.random.Generator | None",
    out_dir: str,
    shards: int = 1,
    fmt: str = "csv",
    checkpoint_every: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    reducers: "dict[str, ReducerFactory] | None" = None,
    quantiles: bool = False,
    manifest_name: str = "manifest.json",
    fault_after: "int | None" = None,
    start_method: "str | None" = None,
) -> BlockExportResult:
    """Export a fleet as per-block segments with reducer checkpoints.

    The resumable counterpart of :func:`export_fleet`: every RNG block
    becomes its own segment file, each shard worker checkpoints its
    serialized reducer state every ``checkpoint_every`` blocks, and a
    partial manifest (:data:`PLAN_NAME`) pins the run parameters so
    :func:`resume_export` can finish an interrupted run with identical
    manifest digests and statistics.  ``checkpoint_every`` and
    ``chunk_size`` are part of the run's determinism envelope (sketch
    compression happens at checkpoint points, reducer folds at
    chunk-size/checkpoint flush boundaries), so resume reuses the
    original values from the plan.

    Unlike the shard layout, this path *reduces while it writes* — the
    returned :class:`BlockExportResult` carries the run's
    :class:`~repro.engine.sharding.FleetStatistics` (default
    moments + correlation; plug in ``reducers``/``quantiles`` as in
    :func:`~repro.engine.sharding.generate_sharded`).

    On success the checkpoints and partial manifest are removed; the
    final manifest has ``layout="block"`` and verifies with
    :func:`verify_manifest` exactly like a shard-layout export.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if fmt == COLUMNAR_FORMAT:
        raise ValueError(
            f"{COLUMNAR_FORMAT!r} writes whole columns and has no per-block "
            "segments to checkpoint; use export_fleet for the columnar "
            "layout, or csv/npz here"
        )
    if fmt not in FORMATS:
        raise ValueError(f"unknown segment format {fmt!r}; supported: {FORMATS}")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if shards < 1:
        raise ValueError("shards must be at least 1")
    root = as_seed_sequence(rng)
    os.makedirs(out_dir, exist_ok=True)
    factories = _resolve_factories(reducers, quantiles)
    if checkpoint_every:
        # Fail before hours of work, not at resume time: every reducer in
        # the set must survive a serialization round trip (a transform-
        # carrying Histogram/ECDF reducer, for example, cannot be restored
        # without its callable and would make the checkpoints useless).
        try:
            ReducerSet.from_state(ReducerSet.from_factories(factories).to_state())
        except StateError as error:
            raise ValueError(
                f"this reducer set cannot be checkpointed: {error}; pass "
                "checkpoint_every=0 or use state-restorable reducers"
            )
    ranges = shard_block_ranges(block_count(size), shards)
    plan = {
        "kind": "FleetExportPlan",
        "state_version": CHECKPOINT_STATE_VERSION,
        "version": MANIFEST_VERSION,
        "format": fmt,
        "size": size,
        "when": _when_as_float(when),
        "entropy": str(root.entropy),
        "spawn_key": [int(k) for k in root.spawn_key],
        "shards": len(ranges),
        "block_size": RNG_BLOCK_SIZE,
        "checkpoint_every": checkpoint_every,
        "chunk_size": chunk_size,
        "manifest_name": manifest_name,
        "reducers": sorted(factories),
        "generator_sha256": _generator_fingerprint(generator),
    }
    # A fresh export invalidates any previous run's checkpoints in this
    # directory — remove them so a later resume cannot mix runs.
    for shard in range(len(ranges)):
        _remove_quiet(os.path.join(out_dir, _checkpoint_name(shard)))
    _write_json_atomic(os.path.join(out_dir, PLAN_NAME), plan)
    return _run_block_export(
        generator, plan, ranges, root, out_dir, factories,
        [None] * len(ranges), fault_after, start_method,
    )


def resume_export(
    generator,
    out_dir: str,
    manifest_name: str = "manifest.json",
    reducers: "dict[str, ReducerFactory] | None" = None,
    quantiles: bool = False,
    fault_after: "int | None" = None,
    start_method: "str | None" = None,
) -> BlockExportResult:
    """Finish an interrupted block-layout export.

    Scans the partial manifest (:data:`PLAN_NAME`) and the per-shard
    checkpoints, validates their schema versions, verifies the digests of
    every checkpointed block file, restores reducer state through
    ``from_state`` and regenerates only the blocks the interrupted run
    never checkpointed.  The finished manifest, payload bytes and reduced
    statistics are identical to an uninterrupted
    :func:`export_fleet_blocks` run of the same parameters.

    ``generator`` and ``reducers``/``quantiles`` must match the original
    run (generator parameters are not serialized; reducer *names* are
    cross-checked against the plan).  A corrupted or wrong-version plan
    or checkpoint raises :class:`~repro.stats.state.StateError`.  If the
    export already finished, returns its manifest with ``statistics=None``.
    """
    manifest_path = os.path.join(out_dir, manifest_name)
    plan_path = os.path.join(out_dir, PLAN_NAME)
    if not os.path.exists(plan_path):
        if os.path.exists(manifest_path):
            try:
                manifest = FleetManifest.load(manifest_path)
            except (OSError, KeyError, TypeError, ValueError) as error:
                raise StateError(
                    f"cannot read manifest {manifest_path}: {error}"
                )
            return BlockExportResult(
                manifest=manifest, statistics=None, resumed_blocks=0
            )
        raise StateError(
            f"nothing to resume in {out_dir}: no {PLAN_NAME} (and no "
            f"{manifest_name}) found"
        )
    plan = _load_json(plan_path, "export plan")
    if plan.get("kind") != "FleetExportPlan" or (
        plan.get("state_version") != CHECKPOINT_STATE_VERSION
    ):
        raise StateError(
            f"export plan {plan_path} has kind {plan.get('kind')!r} / "
            f"state_version {plan.get('state_version')!r}; expected "
            f"FleetExportPlan v{CHECKPOINT_STATE_VERSION}"
        )
    if plan.get("version") != MANIFEST_VERSION:
        raise StateError(
            f"export plan {plan_path} targets manifest version "
            f"{plan.get('version')!r}, not the supported {MANIFEST_VERSION}"
        )
    if plan.get("block_size") != RNG_BLOCK_SIZE:
        raise StateError(
            f"export plan {plan_path} used RNG block size "
            f"{plan.get('block_size')!r}; this build generates "
            f"{RNG_BLOCK_SIZE} and cannot reproduce its blocks"
        )
    def _plan_int(name: str, minimum: int) -> int:
        value = plan.get(name)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise StateError(
                f"export plan {plan_path} field {name!r} must be an integer "
                f">= {minimum}, got {value!r}"
            )
        return value

    size = _plan_int("size", 0)
    shards = _plan_int("shards", 1)
    _plan_int("checkpoint_every", 0)
    _plan_int("chunk_size", 1)
    if plan.get("format") not in FORMATS:
        raise StateError(
            f"export plan {plan_path} has unknown format "
            f"{plan.get('format')!r}; supported: {FORMATS}"
        )
    if not isinstance(plan.get("when"), (int, float)):
        raise StateError(f"export plan {plan_path} field 'when' is not numeric")
    name = plan.get("manifest_name")
    if not isinstance(name, str) or os.path.basename(name) != name:
        raise StateError(
            f"export plan {plan_path} has an invalid manifest_name {name!r}"
        )
    factories = _resolve_factories(reducers, quantiles)
    if sorted(factories) != plan.get("reducers"):
        raise StateError(
            f"resume carries reducers {sorted(factories)} but the "
            f"interrupted run used {plan.get('reducers')}; pass the same "
            "reducer set to resume_export"
        )
    fingerprint = _generator_fingerprint(generator)
    recorded = plan.get("generator_sha256")
    if recorded is not None and fingerprint is not None and fingerprint != recorded:
        raise StateError(
            f"resume generator parameters (sha256 {fingerprint[:12]}…) differ "
            f"from the interrupted run's ({str(recorded)[:12]}…); pass the "
            "same parameter set (--params) used by the original export"
        )
    try:
        root = np.random.SeedSequence(
            entropy=int(plan["entropy"]),
            spawn_key=tuple(int(k) for k in plan["spawn_key"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StateError(f"export plan {plan_path} has an invalid seed: {error}")
    ranges = shard_block_ranges(block_count(size), shards)
    checkpoints: "list[dict | None]" = []
    for shard, (lo, hi) in enumerate(ranges):
        path = os.path.join(out_dir, _checkpoint_name(shard))
        if not os.path.exists(path):
            checkpoints.append(None)
            continue
        checkpoint = _load_json(path, "checkpoint")
        if checkpoint.get("kind") != "FleetShardCheckpoint" or (
            checkpoint.get("state_version") != CHECKPOINT_STATE_VERSION
        ):
            raise StateError(
                f"checkpoint {path} has kind {checkpoint.get('kind')!r} / "
                f"state_version {checkpoint.get('state_version')!r}; expected "
                f"FleetShardCheckpoint v{CHECKPOINT_STATE_VERSION}"
            )
        done = checkpoint.get("blocks_done")
        segments = checkpoint.get("segments")
        digests = checkpoint.get("digests")
        if (
            checkpoint.get("shard") != shard
            or checkpoint.get("block_lo") != lo
            or checkpoint.get("block_hi") != hi
            or not isinstance(done, int)
            or not isinstance(segments, list)
            or not isinstance(digests, list)
            or not 0 <= done <= hi - lo
            or len(segments) != done
            or len(digests) != done
        ):
            raise StateError(
                f"checkpoint {path} does not describe shard {shard} blocks "
                f"[{lo}, {hi}) of this plan"
            )
        if not isinstance(checkpoint.get("reducers"), dict):
            raise StateError(
                f"checkpoint {path} is missing its serialized reducer state"
            )
        # Validate the pieces the worker will consume blindly, so every
        # corruption mode surfaces as the documented StateError (not a
        # KeyError/TypeError escaping through the pool).
        for position, (entry, digest) in enumerate(zip(segments, digests)):
            if not isinstance(digest, str):
                raise StateError(f"checkpoint {path} has a non-string digest")
            try:
                bytes.fromhex(digest)
            except ValueError:
                raise StateError(
                    f"checkpoint {path} has a malformed block digest {digest!r}"
                )
            if not isinstance(entry, dict):
                raise StateError(f"checkpoint {path} has a malformed segment")
            try:
                record = SegmentRecord(**entry)
            except TypeError as error:
                raise StateError(
                    f"checkpoint {path} has a malformed segment record: {error}"
                )
            # Blocks are written strictly in order, so the checkpoint's
            # i-th record must be block lo+i exactly — a duplicated or
            # shuffled record would otherwise splice the wrong rows into a
            # manifest that still verifies.
            if (
                not isinstance(record.path, str)
                or os.path.basename(record.path) != record.path
                or record.block_lo != lo + position
                or record.block_hi != lo + position + 1
            ):
                raise StateError(
                    f"checkpoint {path} segment {record.path!r} is not "
                    f"block {lo + position} of shard {shard} (blocks "
                    f"[{lo}, {hi}) in order)"
                )
        checkpoints.append(checkpoint)
    return _run_block_export(
        generator, plan, ranges, root, out_dir, factories, checkpoints,
        fault_after, start_method,
    )


def _run_block_export(
    generator, plan, ranges, root, out_dir, factories, checkpoints,
    fault_after, start_method=None,
) -> BlockExportResult:
    """Drive the shard workers and finalise a block-layout manifest."""
    fmt, size, when = plan["format"], plan["size"], plan["when"]
    payloads = [
        (
            generator,
            when,
            size,
            root,
            shard,
            lo,
            hi,
            fmt,
            out_dir,
            plan["checkpoint_every"],
            plan.get("chunk_size", DEFAULT_CHUNK_SIZE),
            factories,
            checkpoints[shard],
            fault_after,
        )
        for shard, (lo, hi) in enumerate(ranges)
    ]

    start = time.perf_counter()
    in_process = len(payloads) == 1
    if in_process:
        results = [_write_block_shard(payloads[0])]
    else:
        results = pool_map(
            _write_block_shard, payloads, len(payloads), start_method
        )
    elapsed = time.perf_counter() - start

    results.sort(key=lambda item: item[0])
    merged = ReducerSet.from_factories(factories)
    segments: "list[SegmentRecord]" = []
    all_digests: "list[tuple[int, bytes]]" = []
    resumed = 0
    for _, shard_records, shard_reducers, shard_digests, restored, _ in results:
        merged.merge(shard_reducers)
        segments.extend(shard_records)
        all_digests.extend(shard_digests)
        resumed += restored
    segments.sort(key=lambda record: record.block_lo)

    # A single shard's running payload digest covers the whole export;
    # only a multi-shard run needs the verify-style re-read (one sha256
    # cannot be stitched from per-worker digests).
    if in_process:
        payload_sha256 = results[0][5]
    else:
        payload_hash = hashlib.sha256()
        for record in segments:
            _hash_file_into(os.path.join(out_dir, record.path), payload_hash)
        payload_sha256 = payload_hash.hexdigest()

    manifest = FleetManifest(
        version=plan["version"],
        format=fmt,
        size=size,
        when=when,
        entropy=plan["entropy"],
        spawn_key=tuple(int(k) for k in plan["spawn_key"]),
        shards=len(ranges),
        block_size=plan["block_size"],
        header=generator_schema(generator).csv_header if fmt == "csv" else "",
        payload_sha256=payload_sha256,
        fleet_sha256=combine_block_digests(all_digests),
        segments=tuple(segments),
        layout="block",
        checkpoint_every=plan["checkpoint_every"],
    )
    manifest.save(os.path.join(out_dir, plan["manifest_name"]))
    # Finalised: the plan and checkpoints are now redundant (and would
    # otherwise mark the directory as an interrupted run).
    for shard in range(len(ranges)):
        _remove_quiet(os.path.join(out_dir, _checkpoint_name(shard)))
    _remove_quiet(os.path.join(out_dir, PLAN_NAME))

    statistics = FleetStatistics(
        size=size,
        when=when,
        shards=len(ranges),
        reducers=merged,
        elapsed_seconds=elapsed,
        digest=manifest.fleet_sha256,
    )
    return BlockExportResult(
        manifest=manifest, statistics=statistics, resumed_blocks=resumed
    )


def compact_export(
    manifest_path: str,
    out_dir: str,
    shards: int = 1,
    manifest_name: str = "manifest.json",
) -> FleetManifest:
    """Merge a block-layout export into the per-shard layout byte-identically.

    Concatenates the block segments of a completed block-layout CSV export
    into ``shards`` contiguous per-shard segments — producing exactly the
    files *and manifest* :func:`export_fleet` would have written for the
    same ``(parameters, date, size, seed, shards)``, including every
    digest.  The concatenated payload is re-hashed against the source
    manifest during the copy, so silent corruption of a block segment
    fails the compaction rather than propagating.

    NPZ block exports cannot be compacted (zip metadata is not
    byte-stable); re-export in the shard layout instead.
    """
    manifest = FleetManifest.load(manifest_path)
    if manifest.layout != "block":
        raise ValueError(
            f"only block-layout manifests can be compacted (got "
            f"layout={manifest.layout!r})"
        )
    if manifest.format != "csv":
        raise ValueError(
            "npz segments embed zip metadata and cannot be compacted "
            "byte-identically; re-export with fmt='csv' or layout='shard'"
        )
    base = os.path.dirname(os.path.abspath(manifest_path))
    os.makedirs(out_dir, exist_ok=True)
    target = os.path.abspath(os.path.join(out_dir, manifest_name))
    if target == os.path.abspath(manifest_path):
        raise ValueError(
            "compaction target would overwrite the source manifest; choose "
            "a different out_dir or manifest_name"
        )
    by_index = {record.block_lo: record for record in manifest.segments}
    n_blocks = block_count(manifest.size, manifest.block_size)
    ranges = shard_block_ranges(n_blocks, shards)
    payload_hash = hashlib.sha256()
    records: "list[SegmentRecord]" = []
    for shard, (lo, hi) in enumerate(ranges):
        name = _segment_name(shard, manifest.format)
        segment_hash = hashlib.sha256()
        nbytes = 0
        with open(os.path.join(out_dir, name), "wb") as out_handle:
            for index in range(lo, hi):
                record = by_index.get(index)
                if record is None:
                    raise ValueError(
                        f"manifest {manifest_path} lists no segment for "
                        f"block {index}"
                    )
                with open(os.path.join(base, record.path), "rb") as handle:
                    for piece in iter(lambda: handle.read(1 << 20), b""):
                        out_handle.write(piece)
                        segment_hash.update(piece)
                        payload_hash.update(piece)
                        nbytes += len(piece)
        records.append(
            SegmentRecord(
                path=name,
                shard=shard,
                block_lo=lo,
                block_hi=hi,
                row_lo=min(lo * manifest.block_size, manifest.size),
                row_hi=min(hi * manifest.block_size, manifest.size),
                sha256=segment_hash.hexdigest(),
                bytes=nbytes,
            )
        )
    if payload_hash.hexdigest() != manifest.payload_sha256:
        raise ValueError(
            "block segments no longer match their manifest (payload sha256 "
            "mismatch); run `fleet verify` on the block export"
        )
    compacted = FleetManifest(
        version=manifest.version,
        format=manifest.format,
        size=manifest.size,
        when=manifest.when,
        entropy=manifest.entropy,
        spawn_key=manifest.spawn_key,
        shards=len(ranges),
        block_size=manifest.block_size,
        header=manifest.header,
        payload_sha256=manifest.payload_sha256,
        fleet_sha256=manifest.fleet_sha256,
        segments=tuple(records),
        layout="shard",
        checkpoint_every=0,
    )
    compacted.save(os.path.join(out_dir, manifest_name))
    return compacted


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of re-hashing an export against its manifest."""

    ok: bool
    segments_checked: int
    problems: "tuple[str, ...]"

    def format_lines(self) -> "list[str]":
        if self.ok:
            return [f"{self.segments_checked} segment(s) verified: OK"]
        return [f"{self.segments_checked} segment(s) checked"] + [
            f"FAIL: {problem}" for problem in self.problems
        ]


def verify_manifest(manifest_path: str) -> VerificationReport:
    """Re-hash every segment of an export against its manifest.

    Checks the manifest schema version, each segment file's sha256 and the
    manifest-order concatenated ``payload_sha256``; a missing file, a
    flipped byte or a reordered segment list all surface as problems.
    """
    def _failure(problem: str) -> VerificationReport:
        return VerificationReport(ok=False, segments_checked=0, problems=(problem,))

    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            payload = json.loads(handle.read())
    except (OSError, ValueError) as error:
        return _failure(f"cannot read manifest {manifest_path}: {error}")
    if not isinstance(payload, dict):
        return _failure(f"manifest {manifest_path} is not a JSON object")
    version = payload.get("version")
    if version != MANIFEST_VERSION:
        return _failure(
            f"manifest version {version!r} is not the supported {MANIFEST_VERSION}"
        )
    try:
        manifest = FleetManifest.from_json(json.dumps(payload))
    except (KeyError, TypeError, ValueError) as error:
        return _failure(f"manifest {manifest_path} is malformed: {error}")
    base = os.path.dirname(os.path.abspath(manifest_path))
    problems: "list[str]" = []
    payload_hash = hashlib.sha256()
    checked = 0
    for segment in manifest.segments:
        path = os.path.join(base, segment.path)
        if not os.path.exists(path):
            problems.append(f"segment {segment.path} is missing")
            continue
        actual = os.path.getsize(path)
        if segment.bytes >= 0 and actual != segment.bytes:
            # A partial write is the common corruption of an interrupted
            # copy; name it (and the exact byte counts) instead of leaving
            # only a generic digest mismatch.
            checked += 1
            kind = "truncated" if actual < segment.bytes else "oversized"
            problems.append(
                f"segment {segment.path} is {kind}: {actual} of "
                f"{segment.bytes} expected bytes"
            )
            continue
        file_hash = hashlib.sha256()
        _hash_file_into(path, file_hash, payload_hash)
        checked += 1
        if file_hash.hexdigest() != segment.sha256:
            problems.append(
                f"segment {segment.path} sha256 mismatch "
                f"(expected {segment.sha256[:12]}…, got {file_hash.hexdigest()[:12]}…)"
            )
    if not problems and payload_hash.hexdigest() != manifest.payload_sha256:
        problems.append("concatenated payload sha256 mismatch")
    return VerificationReport(
        ok=not problems, segments_checked=checked, problems=tuple(problems)
    )
