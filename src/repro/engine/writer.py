"""Sharded fleet export: per-shard segments plus a verifiable manifest.

``generate_sharded`` reduces a fleet to statistics; this module *exports*
one beyond a single process.  The host index space is split into
contiguous runs of RNG blocks, one per shard; each worker process writes
its run to a segment file (CSV rows or NPZ columns) and the parent records
a JSON manifest with per-segment sha256 digests, block ranges and row
ranges.

Because segments cover contiguous block ranges and blocks own the random
streams (the :mod:`~repro.engine.streaming` determinism contract), the
byte concatenation of the CSV segments in manifest order is identical to
the *row payload* a single-process export of the same ``(parameters,
date, size, seed)`` fleet writes — for *any* shard count.  Segments carry
no CSV header (it is recorded once in the manifest's ``header`` field);
prepend it to the concatenation to reproduce a ``fleet --out`` file byte
for byte.  The manifest pins the equivalence with two digests:

``payload_sha256``
    sha256 over the segment files' bytes, concatenated in manifest order
    (for CSV this is the digest of the single-process row payload).
``fleet_sha256``
    the format-independent per-block row-digest chain of
    :func:`~repro.engine.streaming.fleet_digest`.

``verify_manifest`` re-hashes the segment files against the manifest and
is surfaced as ``fleet verify`` in the CLI.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.engine.sharding import _pool_context
from repro.engine.streaming import (
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    population_digest,
)
from repro.hosts.population import RESOURCE_LABELS

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1

#: Host CSV header and row format shared by the CLI and the writer.
HOST_CSV_HEADER = "cores,memory_mb,dhrystone_mips,whetstone_mips,disk_gb\n"
HOST_CSV_FMT = "%d,%.1f,%.1f,%.1f,%.2f"

#: Supported segment formats.
FORMATS = ("csv", "npz")


def write_population_csv(population, handle) -> None:
    """Append a population's rows to an open text handle (vectorised)."""
    np.savetxt(handle, population.to_matrix(), fmt=HOST_CSV_FMT)


def _hash_file_into(path: str, *hashes) -> None:
    """Stream a file through one or more hash objects in 1 MiB pieces."""
    with open(path, "rb") as handle:
        for piece in iter(lambda: handle.read(1 << 20), b""):
            for digest in hashes:
                digest.update(piece)


@dataclass(frozen=True)
class SegmentRecord:
    """One shard's segment file within a fleet export."""

    path: str
    shard: int
    block_lo: int
    block_hi: int
    row_lo: int
    row_hi: int
    sha256: str


@dataclass(frozen=True)
class FleetManifest:
    """The verifiable description of a sharded fleet export."""

    version: int
    format: str
    size: int
    when: float
    entropy: str
    spawn_key: "tuple[int, ...]"
    shards: int
    block_size: int
    header: str
    payload_sha256: str
    fleet_sha256: str
    segments: "tuple[SegmentRecord, ...]" = field(default_factory=tuple)

    def to_json(self) -> str:
        payload = asdict(self)
        payload["segments"] = [asdict(s) for s in self.segments]
        payload["spawn_key"] = list(self.spawn_key)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetManifest":
        payload = json.loads(text)
        segments = tuple(SegmentRecord(**s) for s in payload.pop("segments"))
        payload["spawn_key"] = tuple(payload["spawn_key"])
        return cls(segments=segments, **payload)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FleetManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def shard_block_ranges(n_blocks: int, shards: int) -> "list[tuple[int, int]]":
    """Split ``[0, n_blocks)`` into ``shards`` contiguous, balanced runs.

    Contiguity is what makes segment concatenation equal the sequential
    stream — round-robin placement (as the statistics fan-out uses) would
    interleave rows.  Every run differs in length by at most one block.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, max(1, n_blocks))
    base, extra = divmod(n_blocks, shards)
    ranges: "list[tuple[int, int]]" = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _segment_name(shard: int, fmt: str) -> str:
    return f"segment-{shard:04d}.{fmt}"


def _write_segment(payload: tuple):
    """Worker: generate blocks ``[block_lo, block_hi)`` and write one segment.

    Returns ``(shard, file_sha256, block_digests)``; module-level so it
    pickles under fork and spawn alike.
    """
    generator, when, size, root, shard, block_lo, block_hi, fmt, out_dir = payload
    seeds = block_seeds(root, size)
    path = os.path.join(out_dir, _segment_name(shard, fmt))
    digests: "list[tuple[int, bytes]]" = []
    file_hash = hashlib.sha256()

    if fmt == "csv":
        import io

        with open(path, "wb") as handle:
            for index in range(block_lo, block_hi):
                lo = index * RNG_BLOCK_SIZE
                block = generator.generate(
                    when,
                    min(RNG_BLOCK_SIZE, size - lo),
                    np.random.default_rng(seeds[index]),
                )
                digests.append((index, bytes.fromhex(population_digest(block))))
                # Render through np.savetxt with the shared row format so
                # segment bytes are identical to the CLI's sequential export.
                buffer = io.BytesIO()
                np.savetxt(buffer, block.to_matrix(), fmt=HOST_CSV_FMT)
                data = buffer.getvalue()
                handle.write(data)
                file_hash.update(data)
    elif fmt == "npz":
        # Preallocate the segment's columns and fill block by block, so
        # peak working memory stays one block above the (unavoidable for a
        # single .npy entry) segment arrays rather than 2x the segment.
        row_lo = min(block_lo * RNG_BLOCK_SIZE, size)
        row_hi = min(block_hi * RNG_BLOCK_SIZE, size)
        columns = {
            label: np.empty(row_hi - row_lo) for label in RESOURCE_LABELS
        }
        for index in range(block_lo, block_hi):
            lo = index * RNG_BLOCK_SIZE
            block = generator.generate(
                when,
                min(RNG_BLOCK_SIZE, size - lo),
                np.random.default_rng(seeds[index]),
            )
            digests.append((index, bytes.fromhex(population_digest(block))))
            offset = lo - row_lo
            for label in RESOURCE_LABELS:
                columns[label][offset : offset + len(block)] = block.column(label)
        np.savez(path, **columns)
        _hash_file_into(path, file_hash)
    else:
        raise ValueError(f"unknown segment format {fmt!r}; supported: {FORMATS}")

    return shard, file_hash.hexdigest(), digests


def export_fleet(
    generator,
    when: "_dt.date | float",
    size: int,
    rng: "int | np.random.SeedSequence | np.random.Generator | None",
    out_dir: str,
    shards: int = 1,
    fmt: str = "csv",
    manifest_name: str = "manifest.json",
) -> FleetManifest:
    """Export a fleet as per-shard segments plus a manifest.

    ``shards`` workers each write one contiguous-block segment; the
    manifest (written to ``out_dir/manifest_name``) records per-segment
    sha256 digests, block and row ranges, and the two fleet digests
    described in the module docstring.  NPZ files embed zip metadata, so
    only CSV segments carry the byte-concatenation guarantee; the
    ``fleet_sha256`` row-digest chain identifies the fleet in either
    format.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if fmt not in FORMATS:
        raise ValueError(f"unknown segment format {fmt!r}; supported: {FORMATS}")
    from repro.engine.sharding import _when_as_float

    root = as_seed_sequence(rng)
    os.makedirs(out_dir, exist_ok=True)
    n_blocks = block_count(size)
    ranges = shard_block_ranges(n_blocks, shards)
    payloads = [
        (generator, when, size, root, shard, lo, hi, fmt, out_dir)
        for shard, (lo, hi) in enumerate(ranges)
    ]

    if len(payloads) == 1:
        results = [_write_segment(payloads[0])]
    else:
        with _pool_context().Pool(processes=len(payloads)) as pool:
            results = pool.map(_write_segment, payloads)
    results.sort(key=lambda item: item[0])

    payload_hash = hashlib.sha256()
    segments: "list[SegmentRecord]" = []
    all_digests: "list[tuple[int, bytes]]" = []
    for (shard, file_sha, digests), (lo, hi) in zip(results, ranges):
        name = _segment_name(shard, fmt)
        _hash_file_into(os.path.join(out_dir, name), payload_hash)
        segments.append(
            SegmentRecord(
                path=name,
                shard=shard,
                block_lo=lo,
                block_hi=hi,
                row_lo=min(lo * RNG_BLOCK_SIZE, size),
                row_hi=min(hi * RNG_BLOCK_SIZE, size),
                sha256=file_sha,
            )
        )
        all_digests.extend(digests)

    manifest = FleetManifest(
        version=MANIFEST_VERSION,
        format=fmt,
        size=size,
        when=_when_as_float(when),
        entropy=str(root.entropy),
        spawn_key=tuple(int(k) for k in root.spawn_key),
        shards=len(ranges),
        block_size=RNG_BLOCK_SIZE,
        header=HOST_CSV_HEADER if fmt == "csv" else "",
        payload_sha256=payload_hash.hexdigest(),
        fleet_sha256=combine_block_digests(all_digests),
        segments=tuple(segments),
    )
    manifest.save(os.path.join(out_dir, manifest_name))
    return manifest


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of re-hashing an export against its manifest."""

    ok: bool
    segments_checked: int
    problems: "tuple[str, ...]"

    def format_lines(self) -> "list[str]":
        if self.ok:
            return [f"{self.segments_checked} segment(s) verified: OK"]
        return [f"{self.segments_checked} segment(s) checked"] + [
            f"FAIL: {problem}" for problem in self.problems
        ]


def verify_manifest(manifest_path: str) -> VerificationReport:
    """Re-hash every segment of an export against its manifest.

    Checks the manifest schema version, each segment file's sha256 and the
    manifest-order concatenated ``payload_sha256``; a missing file, a
    flipped byte or a reordered segment list all surface as problems.
    """
    with open(manifest_path, "r", encoding="utf-8") as handle:
        payload = json.loads(handle.read())
    version = payload.get("version")
    if version != MANIFEST_VERSION:
        return VerificationReport(
            ok=False,
            segments_checked=0,
            problems=(
                f"manifest version {version!r} is not the supported "
                f"{MANIFEST_VERSION}",
            ),
        )
    manifest = FleetManifest.from_json(json.dumps(payload))
    base = os.path.dirname(os.path.abspath(manifest_path))
    problems: "list[str]" = []
    payload_hash = hashlib.sha256()
    checked = 0
    for segment in manifest.segments:
        path = os.path.join(base, segment.path)
        if not os.path.exists(path):
            problems.append(f"segment {segment.path} is missing")
            continue
        file_hash = hashlib.sha256()
        _hash_file_into(path, file_hash, payload_hash)
        checked += 1
        if file_hash.hexdigest() != segment.sha256:
            problems.append(
                f"segment {segment.path} sha256 mismatch "
                f"(expected {segment.sha256[:12]}…, got {file_hash.hexdigest()[:12]}…)"
            )
    if not problems and payload_hash.hexdigest() != manifest.payload_sha256:
        problems.append("concatenated payload sha256 mismatch")
    return VerificationReport(
        ok=not problems, segments_checked=checked, problems=tuple(problems)
    )
