"""The reducer architecture every statistics consumer shares.

A :class:`Reducer` is the engine's unit of aggregation: it folds population
chunks in with ``update``, combines with a peer via ``merge`` (shard
reduction), and reports through ``result``.  The batch
:class:`~repro.hosts.population.HostPopulation` statistics, the streaming
engine, the sharded generator and the analysis layer all reduce through the
same implementations, so "in-memory population" versus "chunk stream"
versus "shard fan-out" differ only in who drives the fold:

* :class:`~repro.engine.accumulate.MomentAccumulator` /
  :class:`~repro.engine.accumulate.CorrelationAccumulator` — Welford /
  pairwise moments (PR 1), already mergeable.
* :class:`QuantileReducer` — per-column mergeable
  :class:`~repro.stats.sketch.QuantileSketch` (streamed medians/deciles).
* :class:`ExactQuantileReducer` — materialising counterpart used by the
  batch path, same protocol, exact ``np.quantile`` answers.
* :class:`HistogramReducer` — fixed-edge mergeable counts (streamed Fig 8/9
  histograms).
* :class:`ECDFReducer` — sketch-backed distribution-function view
  (streamed CDF panels and KS comparisons).

:class:`ReducerSet` bundles named reducers so callers (CLI, sharding,
analysis) can plug in any combination; ``generate_sharded`` accepts the
factory form and merges the per-shard sets.

**Factory hoisting.**  Factories are zero-argument callables, so the
*construction of the factory dict itself* (binding labels, compression,
partials) should happen once — at module scope or behind
:func:`stream_profile_factories` — not inside per-call/per-date loops.
Entry points that fold many streams (``compare_streams``,
``streamed_resource_overview``, the CLI fleet paths) share one hoisted
factory dict and instantiate fresh reducers from it per stream via
:meth:`ReducerSet.from_factories`; that keeps "which reducers run" a
single construction site instead of N copies drifting apart, and makes
the per-call cost one dict lookup.
"""

from __future__ import annotations

from functools import lru_cache, partial
from typing import Any, Callable, Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.engine.accumulate import (
    ColumnCache,
    CorrelationAccumulator,
    MomentAccumulator,
    as_matrix,
)
from repro.hosts.population import RESOURCE_LABELS, HostPopulation
from repro.stats.sketch import DEFAULT_COMPRESSION, QuantileSketch
from repro.stats.state import (
    StateError,
    decode_compression,
    decode_count,
    decode_floats,
    decode_labels,
    require_state,
    state_field,
)

#: The nine decile probabilities reported by quantile reducers.
DECILES: tuple[float, ...] = tuple(np.round(np.arange(0.1, 0.91, 0.1), 2))


@runtime_checkable
class Reducer(Protocol):
    """One-pass, mergeable aggregation over population chunks.

    ``update`` folds a chunk (a :class:`HostPopulation` or a ``{label:
    column}`` dict) into the running state and returns ``self``; ``merge``
    folds a same-shaped reducer in (shard reduction) and returns ``self``;
    ``result`` reports the aggregate.  Implementations must satisfy
    ``merge(a, b).result() == update(a with b's data).result()`` to
    float-merge precision — that algebra is what makes chunking and shard
    placement invisible to every consumer.
    """

    def update(self, chunk: "HostPopulation | dict") -> "Reducer": ...

    def merge(self, other: "Reducer") -> "Reducer": ...

    def result(self) -> Any: ...


#: A zero-argument callable producing a fresh reducer (must be picklable
#: for the sharded fan-out: classes and ``functools.partial`` qualify).
ReducerFactory = Callable[[], Reducer]


def as_chunk_stream(
    source: "HostPopulation | dict | Iterable[HostPopulation | dict]",
) -> "Iterator[HostPopulation | dict]":
    """Normalise population-or-chunks input into a chunk iterator.

    Lets every consumer accept either an in-memory population (one chunk)
    or a stream such as :func:`~repro.engine.streaming.stream_population`.
    """
    if isinstance(source, (HostPopulation, dict)):
        yield source
    else:
        yield from source


class QuantileReducer:
    """Mergeable per-column quantile sketches over the labelled resources.

    The streamed counterpart of :meth:`HostPopulation.medians` — medians
    and deciles of a fleet of any size in bounded memory, with shard
    sketches combined by :meth:`merge`.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(
        self,
        labels: "tuple[str, ...]" = RESOURCE_LABELS,
        compression: int = DEFAULT_COMPRESSION,
    ):
        self.labels = tuple(labels)
        self.compression = compression
        self._sketches = {label: QuantileSketch(compression) for label in self.labels}

    @property
    def count(self) -> int:
        """Number of hosts folded in."""
        return self._sketches[self.labels[0]].count if self.labels else 0

    def update(self, chunk: "HostPopulation | dict") -> "QuantileReducer":
        data = as_matrix(chunk, self.labels)
        for i, label in enumerate(self.labels):
            self._sketches[label].update(data[:, i])
        return self

    def merge(self, other: "QuantileReducer") -> "QuantileReducer":
        if other.labels != self.labels:
            raise ValueError(f"label mismatch: {self.labels} vs {other.labels}")
        for label in self.labels:
            self._sketches[label].merge(other._sketches[label])
        return self

    def sketch(self, label: str) -> QuantileSketch:
        """The underlying sketch for one column."""
        return self._sketches[label]

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot (one sketch payload per column)."""
        return {
            "kind": "QuantileReducer",
            "state_version": self.STATE_VERSION,
            "labels": list(self.labels),
            "compression": self.compression,
            "sketches": {
                label: self._sketches[label].to_state() for label in self.labels
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileReducer":
        """Restore a reducer from a :meth:`to_state` payload (StateError if bad)."""
        kind = "QuantileReducer"
        require_state(state, kind, cls.STATE_VERSION)
        labels = decode_labels(state, kind)
        sketches = state_field(state, kind, "sketches")
        if not isinstance(sketches, dict) or set(sketches) != set(labels):
            raise StateError(f"{kind} state sketches do not cover its labels")
        restored = {
            label: QuantileSketch.from_state(sketches[label]) for label in labels
        }
        reducer = cls(labels, compression=decode_compression(state, kind))
        reducer._sketches = restored
        return reducer

    def quantiles(self, q: "np.ndarray | list[float] | float") -> "dict[str, np.ndarray]":
        """Per-column quantile estimates at probabilities ``q``."""
        return {
            label: np.asarray(self._sketches[label].quantile(np.asarray(q, dtype=float)))
            for label in self.labels
        }

    def medians(self) -> "dict[str, float]":
        """Estimated median per column (streamed Table IV-style medians).

        ``nan`` per column before any data arrives, mirroring the empty
        :meth:`MomentAccumulator.means` (the raw sketches raise instead).
        """
        if self.count == 0:
            return {label: float("nan") for label in self.labels}
        return {label: self._sketches[label].median() for label in self.labels}

    def result(self) -> "dict[str, dict[float, float]]":
        """Deciles per column: ``{label: {0.1: q10, ..., 0.9: q90}}``."""
        out: "dict[str, dict[float, float]]" = {}
        for label in self.labels:
            if self.count == 0:
                out[label] = {p: float("nan") for p in DECILES}
                continue
            values = np.asarray(self._sketches[label].quantile(np.asarray(DECILES)))
            out[label] = {p: float(v) for p, v in zip(DECILES, values)}
        return out


class ExactQuantileReducer:
    """Materialising quantile reducer — the batch path of the protocol.

    Stores the columns it sees (memory grows with the data, unlike the
    sketch) and answers with exact ``np.quantile`` values.  The batch
    :meth:`HostPopulation.medians` delegates here, so swapping it for a
    :class:`QuantileReducer` is the *only* difference between the exact
    and the streamed pipeline.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(self, labels: "tuple[str, ...]" = RESOURCE_LABELS):
        self.labels = tuple(labels)
        self._parts: "list[np.ndarray]" = []

    @property
    def count(self) -> int:
        """Number of hosts folded in."""
        return sum(part.shape[0] for part in self._parts)

    def update(self, chunk: "HostPopulation | dict") -> "ExactQuantileReducer":
        data = as_matrix(chunk, self.labels)
        if data.shape[0]:
            self._parts.append(data)
        return self

    def merge(self, other: "ExactQuantileReducer") -> "ExactQuantileReducer":
        if other.labels != self.labels:
            raise ValueError(f"label mismatch: {self.labels} vs {other.labels}")
        self._parts.extend(other._parts)
        return self

    def _stacked(self) -> np.ndarray:
        """The materialised sample, concatenated once and cached.

        Collapsing ``_parts`` into a single array *is* the cache —
        repeated ``result()``/``quantiles()``/``medians()`` calls between
        updates reuse it without re-concatenating; ``update``/``merge``
        appending a new part is what invalidates it.
        """
        if not self._parts:
            raise ValueError("cannot query an empty reducer")
        if len(self._parts) > 1:
            self._parts = [np.concatenate(self._parts, axis=0)]
        return self._parts[0]

    def column(self, label: str) -> np.ndarray:
        """The accumulated sample for one column."""
        return self._stacked()[:, self.labels.index(label)]

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot (materialises the full sample).

        This reducer *is* its data, so the payload scales with the hosts
        folded in — it exists for contract completeness and small batches;
        checkpointed fleet runs should carry the sketch-backed
        :class:`QuantileReducer` instead.
        """
        data = self._stacked() if self._parts else np.empty((0, len(self.labels)))
        return {
            "kind": "ExactQuantileReducer",
            "state_version": self.STATE_VERSION,
            "labels": list(self.labels),
            "data": data.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ExactQuantileReducer":
        """Restore a reducer from a :meth:`to_state` payload (StateError if bad)."""
        kind = "ExactQuantileReducer"
        require_state(state, kind, cls.STATE_VERSION)
        labels = decode_labels(state, kind)
        data = decode_floats(state, kind, "data", finite=True)
        if data.size == 0:
            data = data.reshape(0, len(labels))
        if data.ndim != 2 or data.shape[1] != len(labels):
            raise StateError(
                f"{kind} state data has shape {data.shape}; expected "
                f"(n, {len(labels)})"
            )
        reducer = cls(labels)
        if data.shape[0]:
            reducer._parts.append(data)
        return reducer

    def quantiles(self, q: "np.ndarray | list[float] | float") -> "dict[str, np.ndarray]":
        """Exact per-column quantiles at probabilities ``q``.

        ``nan`` before any data arrives — matching ``np.quantile`` on an
        empty sample (and :meth:`QuantileReducer.medians`), so the batch
        delegation keeps the pre-reducer nan-on-empty behaviour.
        """
        probs = np.asarray(q, dtype=float)
        if not self._parts:
            return {label: np.full(probs.shape, np.nan) for label in self.labels}
        # One batched np.quantile over every column at once (same selection
        # algorithm column-wise as per-column calls, ~k fewer passes).
        values = np.quantile(self._stacked(), probs, axis=0)
        return {
            label: np.asarray(values[..., i]) for i, label in enumerate(self.labels)
        }

    def medians(self) -> "dict[str, float]":
        """Exact median per column, matching :func:`np.median` (nan if empty)."""
        if not self._parts:
            return {label: float("nan") for label in self.labels}
        values = np.median(self._stacked(), axis=0)
        return {label: float(values[i]) for i, label in enumerate(self.labels)}

    def result(self) -> "dict[str, dict[float, float]]":
        """Deciles per column, same shape as :meth:`QuantileReducer.result`."""
        if not self._parts:
            return {
                label: {p: float("nan") for p in DECILES} for label in self.labels
            }
        values = np.quantile(self._stacked(), np.asarray(DECILES), axis=0)
        return {
            label: {p: float(v) for p, v in zip(DECILES, values[:, i])}
            for i, label in enumerate(self.labels)
        }


def _transform_fingerprint(transform) -> "tuple | None":
    """A pickling-stable identity for a transform callable.

    Shard reducers are built from *unpickled copies* of their factories, so
    the parent's merge cannot compare transforms with ``is`` — a
    ``functools.partial`` (or any non-module-level callable) comes back as
    a distinct object.  Compare module/qualname when available and fall
    back to ``repr`` (which spells out a partial's function and arguments).
    """
    if transform is None:
        return None
    module = getattr(transform, "__module__", None)
    qualname = getattr(transform, "__qualname__", None)
    if qualname is not None:
        return (module, qualname)
    return (module, repr(transform))


def _fingerprint_state(transform) -> "list | None":
    """JSON form of a transform fingerprint (tuples do not survive JSON)."""
    fingerprint = _transform_fingerprint(transform)
    return None if fingerprint is None else list(fingerprint)


def _check_fingerprint(state: dict, kind: str, transform) -> None:
    """Require ``from_state``'s transform to match the serialised fingerprint."""
    recorded = state_field(state, kind, "transform")
    if recorded is not None and not isinstance(recorded, list):
        raise StateError(f"{kind} state transform fingerprint is malformed")
    if _fingerprint_state(transform) != recorded:
        raise StateError(
            f"{kind} state was serialised with transform fingerprint "
            f"{recorded!r}; pass the same transform to from_state "
            f"(got {_fingerprint_state(transform)!r})"
        )


class HistogramReducer:
    """Mergeable fixed-edge histogram of one column.

    Streamed analogue of :func:`~repro.stats.ecdf.histogram_density`: the
    bin edges are fixed up front (a streaming histogram cannot discover its
    range after the fact), counts merge exactly across chunks and shards,
    and :meth:`result` reports ``(bin_centres, density)``.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(
        self,
        label: str,
        edges: "np.ndarray | list[float]",
        transform: "Callable[[np.ndarray], np.ndarray] | None" = None,
    ):
        self.label = label
        self.edges = np.asarray(edges, dtype=float)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least two edges")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        self.transform = transform
        self.counts = np.zeros(self.edges.size - 1, dtype=np.int64)
        self.count = 0

    def _column(self, chunk: "HostPopulation | dict") -> np.ndarray:
        if isinstance(chunk, HostPopulation):
            return chunk.column(self.label)
        return np.asarray(chunk[self.label], dtype=float)

    def update(self, chunk: "HostPopulation | dict") -> "HistogramReducer":
        values = self._column(chunk)
        if self.transform is not None:
            values = self.transform(values)
        values = values[np.isfinite(values)]
        counts, _ = np.histogram(values, bins=self.edges)
        self.counts += counts
        self.count += int(values.size)
        return self

    def merge(self, other: "HistogramReducer") -> "HistogramReducer":
        if other.label != self.label or not np.array_equal(other.edges, self.edges):
            raise ValueError("histogram reducers must share label and edges")
        if _transform_fingerprint(other.transform) != _transform_fingerprint(
            self.transform
        ):
            raise ValueError(
                "histogram reducers must share a transform; merging counts "
                "taken in different coordinate spaces would be silent nonsense"
            )
        self.counts += other.counts
        self.count += other.count
        return self

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot of the counts.

        The transform *callable* cannot travel in a JSON payload; its
        fingerprint does, and :meth:`from_state` demands the same transform
        back — exactly the guard :meth:`merge` applies.
        """
        return {
            "kind": "HistogramReducer",
            "state_version": self.STATE_VERSION,
            "label": self.label,
            "edges": self.edges.tolist(),
            "counts": [int(c) for c in self.counts],
            "count": int(self.count),
            "transform": _fingerprint_state(self.transform),
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        transform: "Callable[[np.ndarray], np.ndarray] | None" = None,
    ) -> "HistogramReducer":
        """Restore a reducer from a :meth:`to_state` payload.

        A payload serialised with a transform can only be restored by
        passing the *same* transform back in (compared by fingerprint, as
        :meth:`merge` does); a mismatch raises
        :class:`~repro.stats.state.StateError`.
        """
        kind = "HistogramReducer"
        require_state(state, kind, cls.STATE_VERSION)
        label = state_field(state, kind, "label")
        if not isinstance(label, str):
            raise StateError(f"{kind} state label must be a string, got {label!r}")
        _check_fingerprint(state, kind, transform)
        edges = decode_floats(state, kind, "edges", finite=True)
        try:
            reducer = cls(label, edges, transform=transform)
        except ValueError as error:
            raise StateError(f"{kind} state edges are invalid: {error}")
        counts = decode_floats(state, kind, "counts", (edges.size - 1,), finite=True)
        if np.any(counts < 0) or np.any(counts != np.floor(counts)):
            raise StateError(f"{kind} state counts must be non-negative integers")
        reducer.counts = counts.astype(np.int64)
        reducer.count = decode_count(state, kind)
        return reducer

    def centres(self) -> np.ndarray:
        """Bin centres (matching :func:`histogram_density`)."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def density(self) -> np.ndarray:
        """Density-normalised counts (integrates to the in-range fraction)."""
        if self.count == 0:
            return np.zeros_like(self.counts, dtype=float)
        widths = np.diff(self.edges)
        in_range = self.counts.sum()
        if in_range == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / (in_range * widths)

    def result(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(bin_centres, density)`` — what the figure benches print."""
        return self.centres(), self.density()


class ECDFReducer:
    """Sketch-backed empirical-distribution reducer for one column.

    Streams a column through a :class:`QuantileSketch` and reports an
    :class:`~repro.stats.ecdf.ECDF` — the streamed stand-in for
    ``ECDF.from_sample`` used by CDF panels and KS comparisons.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(
        self,
        label: str,
        compression: int = DEFAULT_COMPRESSION,
        transform: "Callable[[np.ndarray], np.ndarray] | None" = None,
        n_points: int = 256,
    ):
        self.label = label
        self.transform = transform
        self.n_points = n_points
        self.sketch = QuantileSketch(compression)

    @property
    def count(self) -> int:
        """Number of values folded in."""
        return self.sketch.count

    def update(self, chunk: "HostPopulation | dict") -> "ECDFReducer":
        if isinstance(chunk, HostPopulation):
            values = chunk.column(self.label)
        else:
            values = np.asarray(chunk[self.label], dtype=float)
        if self.transform is not None:
            values = self.transform(values)
        self.sketch.update(values[np.isfinite(values)])
        return self

    def merge(self, other: "ECDFReducer") -> "ECDFReducer":
        if other.label != self.label:
            raise ValueError("ECDF reducers must share a label")
        if _transform_fingerprint(other.transform) != _transform_fingerprint(
            self.transform
        ):
            raise ValueError("ECDF reducers must share a transform")
        self.sketch.merge(other.sketch)
        return self

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot (sketch payload + transform fingerprint)."""
        return {
            "kind": "ECDFReducer",
            "state_version": self.STATE_VERSION,
            "label": self.label,
            "n_points": self.n_points,
            "transform": _fingerprint_state(self.transform),
            "sketch": self.sketch.to_state(),
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        transform: "Callable[[np.ndarray], np.ndarray] | None" = None,
    ) -> "ECDFReducer":
        """Restore a reducer from a :meth:`to_state` payload.

        Like :meth:`HistogramReducer.from_state`, a payload serialised with
        a transform requires the same transform passed back in.
        """
        kind = "ECDFReducer"
        require_state(state, kind, cls.STATE_VERSION)
        label = state_field(state, kind, "label")
        if not isinstance(label, str):
            raise StateError(f"{kind} state label must be a string, got {label!r}")
        _check_fingerprint(state, kind, transform)
        n_points = state_field(state, kind, "n_points")
        if not isinstance(n_points, int) or n_points < 2:
            raise StateError(
                f"{kind} state n_points must be an integer >= 2, got {n_points!r}"
            )
        sketch = QuantileSketch.from_state(state_field(state, kind, "sketch"))
        reducer = cls(
            label,
            compression=sketch.compression,
            transform=transform,
            n_points=n_points,
        )
        reducer.sketch = sketch
        return reducer

    def result(self):
        """The approximate :class:`~repro.stats.ecdf.ECDF` of the stream."""
        return self.sketch.to_ecdf(self.n_points)


class ReducerSet:
    """A named bundle of reducers driven as one.

    The pluggable unit the engine passes around: ``update``/``merge`` fan
    out to every member, ``result`` collects ``{name: member.result()}``.
    Build from instances, or from picklable zero-argument factories with
    :meth:`from_factories` (the form ``generate_sharded`` ships to worker
    processes).
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(self, reducers: "dict[str, Reducer]"):
        self._reducers = dict(reducers)

    @classmethod
    def from_factories(cls, factories: "dict[str, ReducerFactory]") -> "ReducerSet":
        """Instantiate a fresh set from ``{name: factory}``."""
        return cls({name: factory() for name, factory in factories.items()})

    def update(self, chunk: "HostPopulation | dict") -> "ReducerSet":
        # One ColumnCache per chunk: members share column extraction,
        # matrix stacking and the finiteness scan instead of each
        # re-normalising the same block (see accumulate.ColumnCache).
        if len(self._reducers) > 1 and not isinstance(chunk, ColumnCache):
            chunk = ColumnCache(chunk)
        for reducer in self._reducers.values():
            reducer.update(chunk)
        return self

    def merge(self, other: "ReducerSet") -> "ReducerSet":
        if set(other._reducers) != set(self._reducers):
            raise ValueError(
                f"reducer-set mismatch: {sorted(self._reducers)} vs "
                f"{sorted(other._reducers)}"
            )
        for name, reducer in self._reducers.items():
            reducer.merge(other._reducers[name])
        return self

    def result(self) -> "dict[str, Any]":
        return {name: reducer.result() for name, reducer in self._reducers.items()}

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot: one member payload per name.

        Every member must implement the serialization contract (all the
        built-in reducers do); a member without ``to_state`` raises
        :class:`~repro.stats.state.StateError` naming it.
        """
        states: "dict[str, dict]" = {}
        for name, reducer in self._reducers.items():
            to_state = getattr(reducer, "to_state", None)
            if to_state is None:
                raise StateError(
                    f"reducer {name!r} ({type(reducer).__name__}) does not "
                    "implement to_state, so this set cannot be checkpointed"
                )
            states[name] = to_state()
        return {
            "kind": "ReducerSet",
            "state_version": self.STATE_VERSION,
            "reducers": states,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ReducerSet":
        """Restore a set from a :meth:`to_state` payload.

        Members are dispatched on their payload ``kind`` through
        :func:`reducer_from_state`; a corrupted, unknown-kind or
        wrong-version member raises :class:`~repro.stats.state.StateError`.
        """
        require_state(state, "ReducerSet", cls.STATE_VERSION)
        members = state_field(state, "ReducerSet", "reducers")
        if not isinstance(members, dict):
            raise StateError("ReducerSet state field 'reducers' must be a dict")
        return cls(
            {name: reducer_from_state(member) for name, member in members.items()}
        )

    def get(self, name: str, default: Any = None) -> Any:
        return self._reducers.get(name, default)

    def names(self) -> "tuple[str, ...]":
        return tuple(self._reducers)

    def __getitem__(self, name: str) -> Reducer:
        return self._reducers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._reducers

    def __iter__(self) -> "Iterator[str]":
        return iter(self._reducers)

    def __len__(self) -> int:
        return len(self._reducers)


@lru_cache(maxsize=None)
def stream_profile_factories(
    labels: "tuple[str, ...]" = RESOURCE_LABELS,
    compression: int = DEFAULT_COMPRESSION,
    correlation: bool = True,
) -> "dict[str, ReducerFactory]":
    """The hoisted factory dict the streamed analysis entry points share.

    One construction site for the moments + quantiles (+ correlation)
    profile every streamed comparison/overview folds through:
    ``compare_streams``, ``streamed_distribution`` and friends used to
    rebuild these factory bindings on every call (and per loop iteration)
    — now they fetch the memoised dict and only pay
    :meth:`ReducerSet.from_factories` per stream.  See the module
    docstring's *factory hoisting* note before adding another
    per-call construction.

    The returned dict is cached and shared — treat it as frozen; copy
    before mutating (as :func:`~repro.engine.sharding._resolve_factories`
    does with the default set).
    """
    factories: "dict[str, ReducerFactory]" = {
        "moments": partial(MomentAccumulator, tuple(labels)),
        "quantiles": partial(QuantileReducer, tuple(labels), compression),
    }
    if correlation:
        factories["correlation"] = CorrelationAccumulator
    return factories


#: Reducer names whose states enter the validation statistics digest, in
#: digest order.  Fixed independently of what extra reducers a probe adds,
#: so the pinned digest is stable under registry growth.
VALIDATION_PROFILE_NAMES: tuple[str, ...] = ("correlation", "moments", "quantiles")


@lru_cache(maxsize=None)
def validation_profile_factories(
    labels: "tuple[str, ...]" = RESOURCE_LABELS,
    compression: int = DEFAULT_COMPRESSION,
) -> "dict[str, ReducerFactory]":
    """The hoisted factory dict the ``fleet validate`` probes stream with.

    The canonical probe profile: moments + correlation + quantile sketch,
    exactly the :func:`stream_profile_factories` membership today, hoisted
    under its own name so probe-needed reducer additions have a single
    construction site (and so the probe registry's declarative
    ``factories`` fields all alias one shared dict).  Every member must
    implement ``to_state`` — the validation runner digests the
    :data:`VALIDATION_PROFILE_NAMES` subset of the merged states to pin
    streamed-statistics determinism.

    Cached and shared like :func:`stream_profile_factories`: treat the
    returned dict as frozen; copy before mutating.
    """
    return stream_profile_factories(tuple(labels), compression, correlation=True)


#: State-payload ``kind`` → restoring class, for :func:`reducer_from_state`.
STATE_KINDS: "dict[str, Any]" = {
    "MomentAccumulator": MomentAccumulator,
    "CorrelationAccumulator": CorrelationAccumulator,
    "QuantileReducer": QuantileReducer,
    "ExactQuantileReducer": ExactQuantileReducer,
    "HistogramReducer": HistogramReducer,
    "ECDFReducer": ECDFReducer,
}


def reducer_from_state(state: Any) -> Reducer:
    """Restore any built-in reducer from its ``to_state`` payload.

    Dispatches on the payload's ``kind`` field; unknown kinds and
    non-dict payloads raise :class:`~repro.stats.state.StateError`.
    Histogram/ECDF payloads carrying a transform fingerprint cannot be
    restored generically — their ``from_state`` needs the transform
    callable back — so those surface the member class's own StateError.
    """
    if not isinstance(state, dict):
        raise StateError(
            f"reducer state must be a dict, got {type(state).__name__}"
        )
    kind = state.get("kind")
    cls = STATE_KINDS.get(kind)
    if cls is None:
        raise StateError(
            f"unknown reducer state kind {kind!r}; known kinds: "
            f"{sorted(STATE_KINDS)}"
        )
    return cls.from_state(state)


class ChunkedFold:
    """Fold population blocks into a reducer set in ~``chunk_size`` batches.

    The shared accumulation step of the shard statistics fan-out and the
    block-layout writer: blocks buffer until ``chunk_size`` hosts are
    pending, then one concatenated ``update`` folds them (fewer, more
    vectorised reducer calls).  Flush points are deterministic given the
    block sequence, which is what keeps resumed and uninterrupted runs
    bit-identical — both drivers must flush through this one code path.
    """

    def __init__(self, reducers: ReducerSet, chunk_size: int):
        self.reducers = reducers
        self.chunk_size = chunk_size
        self._batch: "list[HostPopulation]" = []
        self._rows = 0

    def add(self, block: HostPopulation) -> None:
        """Buffer one block, flushing when the batch reaches chunk_size."""
        self._batch.append(block)
        self._rows += len(block)
        if self._rows >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        """Fold any buffered blocks into the reducers now."""
        if not self._batch:
            return
        merged = (
            self._batch[0]
            if len(self._batch) == 1
            # Dispatch through the block's own class so scenario
            # ColumnBlocks fold exactly like host populations.
            else type(self._batch[0]).concatenate(self._batch)
        )
        self.reducers.update(merged)
        self._batch = []
        self._rows = 0


def reduce_stream(
    source: "HostPopulation | dict | Iterable[HostPopulation | dict]",
    reducers: "ReducerSet | dict[str, Reducer]",
) -> ReducerSet:
    """Fold a population or chunk stream through a reducer set and return it."""
    reducer_set = reducers if isinstance(reducers, ReducerSet) else ReducerSet(reducers)
    for chunk in as_chunk_stream(source):
        reducer_set.update(chunk)
    return reducer_set
