"""Streaming, sharded fleet-generation engine.

Layers
------
:mod:`~repro.engine.streaming`
    Chunked generation under a block-based determinism contract
    (``SeedSequence.spawn`` per fixed RNG block), plus fleet hashing.
:mod:`~repro.engine.accumulate`
    One-pass Welford/pairwise accumulators reproducing the batch
    :class:`~repro.hosts.population.HostPopulation` statistics.
:mod:`~repro.engine.sharding`
    ``multiprocessing`` fan-out over RNG blocks with accumulator reduction.
"""

from repro.engine.accumulate import CorrelationAccumulator, MomentAccumulator
from repro.engine.sharding import FleetStatistics, generate_sharded
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    fleet_digest,
    generate_fleet,
    iter_blocks,
    population_digest,
    stream_population,
)

__all__ = [
    "CorrelationAccumulator",
    "MomentAccumulator",
    "FleetStatistics",
    "generate_sharded",
    "DEFAULT_CHUNK_SIZE",
    "RNG_BLOCK_SIZE",
    "as_seed_sequence",
    "block_count",
    "block_seeds",
    "combine_block_digests",
    "fleet_digest",
    "generate_fleet",
    "iter_blocks",
    "population_digest",
    "stream_population",
]
