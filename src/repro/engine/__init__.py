"""Streaming, sharded fleet-generation engine.

Layers
------
:mod:`~repro.engine.streaming`
    Chunked generation under a block-based determinism contract
    (``SeedSequence.spawn`` per fixed RNG block), plus fleet hashing.
:mod:`~repro.engine.accumulate`
    One-pass Welford/pairwise moment reducers reproducing the batch
    :class:`~repro.hosts.population.HostPopulation` statistics.
:mod:`~repro.engine.reduce`
    The :class:`~repro.engine.reduce.Reducer` protocol
    (update/merge/result) every statistics consumer shares, plus the
    quantile-sketch, histogram and ECDF reducers and the
    :class:`~repro.engine.reduce.ReducerSet` bundle.
:mod:`~repro.engine.sharding`
    ``multiprocessing`` fan-out over RNG blocks with reducer-set reduction.
:mod:`~repro.engine.writer`
    Sharded fleet export: per-shard CSV/NPZ segments plus a sha256
    manifest (``fleet export`` / ``fleet verify``), and the resumable
    per-block layout with reducer-state checkpoints
    (``export_fleet_blocks`` / ``resume_export`` / ``compact_export``).
:mod:`~repro.engine.distributed`
    Coordinator/worker reduction beyond one machine: a length-prefixed
    JSON TCP protocol with heartbeats, lease reassignment and work
    stealing (``fleet export --backend distributed`` /
    ``fleet serve-worker``), byte-identical to the single-machine export.

Every reducer serializes through the versioned ``to_state``/``from_state``
contract of :mod:`repro.stats.state` — the substrate of export
checkpoints and of the distributed-backend wire payloads.
"""

from repro.engine.accumulate import (
    CorrelationAccumulator,
    MomentAccumulator,
    as_matrix,
)
from repro.engine.reduce import (
    DECILES,
    STATE_KINDS,
    ECDFReducer,
    ExactQuantileReducer,
    HistogramReducer,
    QuantileReducer,
    Reducer,
    ReducerSet,
    as_chunk_stream,
    reduce_stream,
    reducer_from_state,
)
from repro.engine.distributed import (
    PROTOCOL_VERSION,
    WIRE_GENERATOR_BUILDERS,
    WIRE_REDUCER_FACTORIES,
    AuthenticationError,
    register_wire_generator,
    DistributedExportResult,
    ProtocolError,
    export_fleet_distributed,
    parse_endpoint,
    resolve_fleet_token,
    resume_fleet_distributed,
    serve_worker,
)
from repro.engine.pool import (
    BlockBuffer,
    WorkerPool,
    create_block_buffer,
    pool_stats,
    resolve_start_method,
    shutdown_pools,
)
from repro.engine.retry import (
    DIAL_RETRY,
    RECONNECT_RETRY,
    WRITE_RETRY,
    RetryError,
    RetryPolicy,
)
from repro.engine.sharding import (
    DEFAULT_REDUCER_FACTORIES,
    FleetStatistics,
    generate_sharded,
)
from repro.engine.table import (
    HOST_CSV_FMT,
    HOST_CSV_HEADER,
    HOST_SCHEMA,
    ColumnBlock,
    TableSchema,
    block_schema,
    generator_schema,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    fleet_digest,
    generate_fleet,
    iter_blocks,
    population_digest,
    stream_population,
)
from repro.engine.writer import (
    COLUMNAR_FORMAT,
    BlockExportResult,
    FleetManifest,
    SegmentRecord,
    VerificationReport,
    compact_export,
    describe_export_dir,
    export_fleet,
    export_fleet_blocks,
    read_columnar_export,
    resume_export,
    shard_block_ranges,
    verify_manifest,
)
from repro.stats.state import StateError

__all__ = [
    "BlockBuffer",
    "COLUMNAR_FORMAT",
    "ColumnBlock",
    "HOST_CSV_FMT",
    "HOST_CSV_HEADER",
    "HOST_SCHEMA",
    "TableSchema",
    "block_schema",
    "generator_schema",
    "CorrelationAccumulator",
    "MomentAccumulator",
    "WorkerPool",
    "as_matrix",
    "create_block_buffer",
    "pool_stats",
    "read_columnar_export",
    "resolve_start_method",
    "shutdown_pools",
    "DECILES",
    "ECDFReducer",
    "ExactQuantileReducer",
    "HistogramReducer",
    "QuantileReducer",
    "Reducer",
    "ReducerSet",
    "as_chunk_stream",
    "reduce_stream",
    "DEFAULT_REDUCER_FACTORIES",
    "FleetStatistics",
    "generate_sharded",
    "DEFAULT_CHUNK_SIZE",
    "RNG_BLOCK_SIZE",
    "as_seed_sequence",
    "block_count",
    "block_seeds",
    "combine_block_digests",
    "fleet_digest",
    "generate_fleet",
    "iter_blocks",
    "population_digest",
    "stream_population",
    "AuthenticationError",
    "BlockExportResult",
    "DistributedExportResult",
    "FleetManifest",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "STATE_KINDS",
    "WIRE_GENERATOR_BUILDERS",
    "WIRE_REDUCER_FACTORIES",
    "register_wire_generator",
    "export_fleet_distributed",
    "parse_endpoint",
    "resolve_fleet_token",
    "resume_fleet_distributed",
    "serve_worker",
    "SegmentRecord",
    "StateError",
    "VerificationReport",
    "DIAL_RETRY",
    "RECONNECT_RETRY",
    "WRITE_RETRY",
    "RetryError",
    "RetryPolicy",
    "compact_export",
    "describe_export_dir",
    "export_fleet",
    "export_fleet_blocks",
    "reducer_from_state",
    "resume_export",
    "shard_block_ranges",
    "verify_manifest",
]
