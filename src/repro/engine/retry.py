"""Shared retry/backoff policies for the export stack.

Every place the stack used to fail hard on the first transient error —
a worker dialling a coordinator that is not listening *yet*, a block
write hitting a momentary ``ENOSPC``/``EIO``, a local worker whose
coordinator connection hiccuped mid-job — now routes through one
:class:`RetryPolicy`: jittered exponential backoff, capped both by an
attempt budget and a wall-clock deadline.  The policy is a frozen value
object so call sites can share tuned instances (:data:`DIAL_RETRY`,
:data:`WRITE_RETRY`, :data:`RECONNECT_RETRY`) and tests can assert the
exact delay schedule.

Jitter is *full jitter* on a fraction of each step: step ``i`` sleeps
``base_delay * multiplier**i``, of which ``jitter`` of the span is
uniformly random.  Pass ``seed`` for a reproducible schedule (the
chaos tests do); the default draws fresh entropy, which is what a real
thundering herd wants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np


class RetryError(RuntimeError):
    """Raised when a retried operation exhausts its policy; chains the
    final attempt's exception as ``__cause__``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff, capped by attempts and deadline.

    ``attempts`` counts *tries*, not retries: ``attempts=1`` means no
    retry at all.  The ``deadline`` (seconds, from the first attempt)
    wins over the attempt budget — a policy never sleeps past it, and a
    failure after it raises immediately.
    """

    attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: float = 15.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1 (got {self.attempts})")
        if self.base_delay < 0 or self.max_delay < 0 or self.deadline <= 0:
            raise ValueError("delays must be >= 0 and deadline > 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1 (got {self.multiplier})")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1] (got {self.jitter})")

    def delays(self, seed: "int | None" = None) -> "list[float]":
        """The backoff schedule: one sleep per retry (``attempts - 1``)."""
        rng = np.random.default_rng(seed)
        delays = []
        for step in range(self.attempts - 1):
            span = min(self.base_delay * self.multiplier**step, self.max_delay)
            fixed = span * (1.0 - self.jitter)
            delays.append(fixed + span * self.jitter * float(rng.random()))
        return delays

    def call(
        self,
        func,
        retry_on: "tuple[type, ...]" = (OSError,),
        seed: "int | None" = None,
        describe: str = "operation",
    ):
        """Run ``func()`` under this policy.

        Exceptions outside ``retry_on`` propagate untouched on the first
        throw.  A ``retry_on`` failure that exhausts the budget raises
        :class:`RetryError` naming the operation, the attempts spent and
        the final error (chained as ``__cause__``).
        """
        start = time.monotonic()
        last_error: "BaseException | None" = None
        for attempt, delay in enumerate([*self.delays(seed), None], start=1):
            try:
                return func()
            except retry_on as error:
                last_error = error
                if delay is None or time.monotonic() - start + delay > self.deadline:
                    break
                time.sleep(delay)
        raise RetryError(
            f"{describe} failed after {attempt} attempt(s) over "
            f"{time.monotonic() - start:.2f} s: {last_error}"
        ) from last_error


#: A worker (or coordinator) dialling a TCP endpoint that may not be
#: listening yet — the serve-worker race the CI smokes used to paper
#: over with ``sleep 1``.
DIAL_RETRY = RetryPolicy(
    attempts=6, base_delay=0.05, multiplier=2.0, max_delay=1.0, deadline=10.0
)

#: Transient I/O on a block-segment write; short and cheap, because a
#: *persistent* write failure should surface fast.
WRITE_RETRY = RetryPolicy(
    attempts=3, base_delay=0.02, multiplier=2.0, max_delay=0.2, deadline=5.0
)

#: A local worker re-dialling a coordinator it lost mid-job: a *bounded*
#: window — the coordinator may simply be gone, and a worker must not
#: outlive teardown by more than a couple of seconds.
RECONNECT_RETRY = RetryPolicy(
    attempts=3, base_delay=0.05, multiplier=2.0, max_delay=0.5, deadline=2.0
)

#: Reconnect attempts (full dial cycles) a local worker spends on a lost
#: coordinator connection before giving up for good.
WORKER_RECONNECT_ATTEMPTS = 2
