"""One-pass, mergeable statistics for streamed host fleets.

The batch :class:`~repro.hosts.population.HostPopulation` computes means,
standard deviations and the Table III/VIII correlation matrix from full
column arrays.  These accumulators compute the same quantities from a
stream of chunks using the pairwise (Chan et al.) update of Welford's
algorithm, so a fleet of any size can be summarised in bounded memory, and
shard results can be combined with :meth:`merge` — the machinery behind
streaming-moment estimation in large measurement studies (cf. Park et al.'s
dependence analysis of internet flows).

Both accumulators reproduce the batch statistics to float precision:
``MomentAccumulator`` matches :meth:`HostPopulation.means` /
:meth:`HostPopulation.stds` (population standard deviation, ``ddof=0``), and
``CorrelationAccumulator`` matches :meth:`HostPopulation.correlation_matrix`
— including the derived ``mem_per_core`` column — to well within ``1e-6``.
"""

from __future__ import annotations

import numpy as np

from repro.hosts.population import (
    CORRELATION_LABELS,
    RESOURCE_LABELS,
    HostPopulation,
)
from repro.stats.correlation import CorrelationMatrix
from repro.stats.state import (
    decode_count,
    decode_floats,
    decode_labels,
    require_state,
)


def _stack_columns(columns, labels: "tuple[str, ...]") -> np.ndarray:
    """Validate shapes, stack into ``(n, k)`` and apply the NaN/±inf policy."""
    length = columns[0].size
    for label, column in zip(labels, columns):
        if column.ndim != 1 or column.size != length:
            raise ValueError(
                f"column {label!r} has shape {column.shape}; expected ({length},)"
            )
    data = np.column_stack(columns) if length else np.empty((0, len(labels)))
    if data.size and not np.isfinite(data).all():
        bad = [
            label
            for label, finite in zip(labels, np.isfinite(data).all(axis=0))
            if not finite
        ]
        raise ValueError(
            f"non-finite values in column(s) {', '.join(bad)}; one-pass "
            "accumulators would be silently poisoned — filter or impute "
            "before folding"
        )
    return data


class ColumnCache:
    """A chunk wrapper memoising column extraction and matrix stacking.

    :meth:`~repro.engine.reduce.ReducerSet.update` fans one chunk out to
    several reducers, and before this cache existed each member re-sliced
    its columns, re-stacked its matrix and re-ran the finiteness scan over
    the same block — the moment and correlation reducers alone paid the
    derived ``mem_per_core`` division and the ``isfinite`` pass twice per
    chunk.  Wrapping the chunk once makes those per-label and per-label-
    tuple computations shared: columns (including derived ones) are
    extracted once, and :func:`as_matrix` results are cached per label
    tuple, so adding reducers to a set no longer multiplies the chunk
    normalisation cost.

    The wrapper quacks like the ``{label: column}`` dict chunks every
    reducer already accepts (``chunk[label]``), so it needs no special
    handling outside :func:`as_matrix`.  It must only wrap chunks that are
    not mutated afterwards — populations are frozen and the engine's block
    streams are single-use, which is why :class:`ReducerSet` applies it
    internally rather than asking callers to.
    """

    __slots__ = ("source", "_columns", "_matrices")

    def __init__(self, source: "HostPopulation | dict"):
        if isinstance(source, ColumnCache):  # pragma: no cover - defensive
            source = source.source
        self.source = source
        self._columns: "dict[str, np.ndarray]" = {}
        self._matrices: "dict[tuple[str, ...], np.ndarray]" = {}

    def __getitem__(self, label: str) -> np.ndarray:
        column = self._columns.get(label)
        if column is None:
            if isinstance(self.source, HostPopulation):
                column = self.source.column(label)
            else:
                column = np.asarray(self.source[label], dtype=float)
            self._columns[label] = column
        return column

    #: Population-style access, so reducers written against either chunk
    #: shape (``chunk[label]`` or ``chunk.column(label)``) see through it.
    column = __getitem__

    def __len__(self) -> int:
        if isinstance(self.source, HostPopulation):
            return len(self.source)
        for label in self.source:
            return int(self[label].size)
        return 0

    # Dict duck-typing: custom reducers written against the ``{label:
    # column}`` chunk shape may probe membership or iterate labels, and
    # without these Python's legacy fallback would forward integer
    # indices into __getitem__ and raise a bogus KeyError.
    def __contains__(self, label: object) -> bool:
        if isinstance(self.source, HostPopulation):
            return label == "mem_per_core" or label in RESOURCE_LABELS
        return label in self.source

    def __iter__(self):
        if isinstance(self.source, HostPopulation):
            return iter(CORRELATION_LABELS)
        return iter(self.source)

    def keys(self):
        """The chunk's labels (derived columns included for populations)."""
        return list(self)

    def matrix(self, labels: "tuple[str, ...]") -> np.ndarray:
        """The (cached) :func:`as_matrix` stack for one label tuple."""
        data = self._matrices.get(labels)
        if data is None:
            data = _stack_columns([self[label] for label in labels], labels)
            self._matrices[labels] = data
        return data


def as_matrix(source, labels: "tuple[str, ...]") -> np.ndarray:
    """Stack a population or ``{label: column}`` dict into an ``(n, k)`` array.

    The shared chunk-normalisation step of every reducer in
    :mod:`repro.engine.reduce`; accepts the same chunk types ``update``
    does, plus the memoising :class:`ColumnCache` wrapper
    :class:`~repro.engine.reduce.ReducerSet` applies when fanning a chunk
    out to several reducers.

    Non-finite entries are **rejected** with a :class:`ValueError` naming
    the offending column(s).  This is the engine's NaN/±inf policy: a
    single NaN folded into a Welford mean or co-moment poisons every
    statistic downstream without any error surfacing, and a skip-silently
    policy would make shard counts disagree.  Consumers with data that
    legitimately contains holes must filter or impute *before* the fold
    (as :class:`~repro.engine.reduce.HistogramReducer` and
    :class:`~repro.engine.reduce.ECDFReducer` do for their own columns).
    """
    if isinstance(source, ColumnCache):
        return source.matrix(tuple(labels))
    if isinstance(source, HostPopulation):
        columns = [source.column(label) for label in labels]
    else:
        columns = [np.asarray(source[label], dtype=float) for label in labels]
    return _stack_columns(columns, labels)


class MomentAccumulator:
    """Streaming mean/std of the labelled resource columns.

    Feed chunks with :meth:`update`, combine shards with :meth:`merge`; the
    running state is ``(count, mean vector, M2 vector)`` where ``M2`` is the
    sum of squared deviations from the running mean (Welford).
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(self, labels: "tuple[str, ...]" = RESOURCE_LABELS):
        self.labels = tuple(labels)
        self.count = 0
        self._mean = np.zeros(len(self.labels))
        self._m2 = np.zeros(len(self.labels))

    def update(self, source: "HostPopulation | dict") -> "MomentAccumulator":
        """Fold one chunk (population or column dict) into the running state."""
        data = as_matrix(source, self.labels)
        n_b = data.shape[0]
        if n_b == 0:
            return self
        mean_b = data.mean(axis=0)
        m2_b = np.square(data - mean_b).sum(axis=0)
        self._combine(n_b, mean_b, m2_b)
        return self

    def merge(self, other: "MomentAccumulator") -> "MomentAccumulator":
        """Fold another accumulator (e.g. a shard's) into this one."""
        if other.labels != self.labels:
            raise ValueError(f"label mismatch: {self.labels} vs {other.labels}")
        if other.count:
            self._combine(other.count, other._mean, other._m2)
        return self

    def _combine(self, n_b: int, mean_b: np.ndarray, m2_b: np.ndarray) -> None:
        n_a = self.count
        n = n_a + n_b
        delta = mean_b - self._mean
        self._mean = self._mean + delta * (n_b / n)
        self._m2 = self._m2 + m2_b + np.square(delta) * (n_a * n_b / n)
        self.count = n

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot of ``(labels, count, mean, M2)``."""
        return {
            "kind": "MomentAccumulator",
            "state_version": self.STATE_VERSION,
            "labels": list(self.labels),
            "count": int(self.count),
            "mean": self._mean.tolist(),
            "m2": self._m2.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MomentAccumulator":
        """Restore an accumulator from a :meth:`to_state` payload.

        Raises :class:`~repro.stats.state.StateError` on a corrupted,
        mismatched or wrong-version payload; a restored accumulator
        continues the fold bit-identically to the original.
        """
        kind = "MomentAccumulator"
        require_state(state, kind, cls.STATE_VERSION)
        labels = decode_labels(state, kind)
        accumulator = cls(labels)
        accumulator.count = decode_count(state, kind)
        accumulator._mean = decode_floats(
            state, kind, "mean", (len(labels),), finite=True
        )
        accumulator._m2 = decode_floats(
            state, kind, "m2", (len(labels),), finite=True
        )
        return accumulator

    def means(self) -> "dict[str, float]":
        """Mean per column, matching :meth:`HostPopulation.means`."""
        if self.count == 0:
            return {label: float("nan") for label in self.labels}
        return {label: float(m) for label, m in zip(self.labels, self._mean)}

    def variances(self) -> "dict[str, float]":
        """Population variance (``ddof=0``) per column."""
        if self.count == 0:
            return {label: float("nan") for label in self.labels}
        return {label: float(v) for label, v in zip(self.labels, self._m2 / self.count)}

    def stds(self) -> "dict[str, float]":
        """Population std per column, matching :meth:`HostPopulation.stds`."""
        return {label: float(np.sqrt(v)) for label, v in self.variances().items()}

    def result(self) -> "dict[str, dict[str, float]]":
        """Protocol result: ``{"means": ..., "stds": ...}`` plus the count."""
        return {"count": self.count, "means": self.means(), "stds": self.stds()}

    def summary_table(self, medians: "dict[str, float] | None" = None) -> str:
        """Aligned mean[/median]/std text table (streamed analogue of the batch one).

        Medians are not derivable from moments; pass the ``medians`` of a
        :class:`~repro.engine.reduce.QuantileReducer` run over the same
        stream to include them.
        """
        means, stds = self.means(), self.stds()
        if medians is None:
            lines = [f"{'resource':>12} {'mean':>14} {'std':>14}"]
            for label in self.labels:
                lines.append(f"{label:>12} {means[label]:>14.2f} {stds[label]:>14.2f}")
        else:
            lines = [f"{'resource':>12} {'mean':>14} {'median':>14} {'std':>14}"]
            for label in self.labels:
                lines.append(
                    f"{label:>12} {means[label]:>14.2f} "
                    f"{medians[label]:>14.2f} {stds[label]:>14.2f}"
                )
        return "\n".join(lines)


class CorrelationAccumulator:
    """Streaming Pearson matrix of the six Table III quantities.

    Maintains ``(count, mean vector, co-moment matrix)`` where the co-moment
    matrix is ``sum_i (x_i - mean)(x_i - mean)^T``, merged across chunks and
    shards with the pairwise update.  :meth:`matrix` reproduces
    :meth:`HostPopulation.correlation_matrix` semantics: non-finite entries
    (constant or degenerate columns) become 0 with the diagonal restored
    to 1.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(self, labels: "tuple[str, ...]" = CORRELATION_LABELS):
        self.labels = tuple(labels)
        k = len(self.labels)
        self.count = 0
        self._mean = np.zeros(k)
        self._comoment = np.zeros((k, k))

    def update(self, source: "HostPopulation | dict") -> "CorrelationAccumulator":
        """Fold one chunk (population or column dict) into the running state."""
        data = as_matrix(source, self.labels)
        n_b = data.shape[0]
        if n_b == 0:
            return self
        mean_b = data.mean(axis=0)
        deviations = data - mean_b
        self._combine(n_b, mean_b, deviations.T @ deviations)
        return self

    def merge(self, other: "CorrelationAccumulator") -> "CorrelationAccumulator":
        """Fold another accumulator (e.g. a shard's) into this one."""
        if other.labels != self.labels:
            raise ValueError(f"label mismatch: {self.labels} vs {other.labels}")
        if other.count:
            self._combine(other.count, other._mean, other._comoment)
        return self

    def _combine(self, n_b: int, mean_b: np.ndarray, comoment_b: np.ndarray) -> None:
        n_a = self.count
        n = n_a + n_b
        delta = mean_b - self._mean
        self._mean = self._mean + delta * (n_b / n)
        self._comoment = self._comoment + comoment_b + np.outer(delta, delta) * (
            n_a * n_b / n
        )
        self.count = n

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot of ``(labels, count, mean, co-moment)``."""
        return {
            "kind": "CorrelationAccumulator",
            "state_version": self.STATE_VERSION,
            "labels": list(self.labels),
            "count": int(self.count),
            "mean": self._mean.tolist(),
            "comoment": self._comoment.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CorrelationAccumulator":
        """Restore an accumulator from a :meth:`to_state` payload.

        Raises :class:`~repro.stats.state.StateError` on a corrupted,
        mismatched or wrong-version payload; a restored accumulator
        continues the fold bit-identically to the original.
        """
        kind = "CorrelationAccumulator"
        require_state(state, kind, cls.STATE_VERSION)
        labels = decode_labels(state, kind)
        k = len(labels)
        accumulator = cls(labels)
        accumulator.count = decode_count(state, kind)
        accumulator._mean = decode_floats(state, kind, "mean", (k,), finite=True)
        accumulator._comoment = decode_floats(
            state, kind, "comoment", (k, k), finite=True
        )
        return accumulator

    def result(self) -> CorrelationMatrix:
        """Protocol result: the streamed labelled Pearson matrix."""
        return self.matrix()

    def covariance(self) -> np.ndarray:
        """Population covariance matrix (``ddof=0``) of the columns."""
        if self.count < 1:
            raise ValueError("no observations accumulated")
        return self._comoment / self.count

    def matrix(self) -> CorrelationMatrix:
        """The streamed Table III/VIII-style labelled Pearson matrix."""
        if self.count < 2:
            raise ValueError("need at least two hosts for a correlation matrix")
        covariance = self.covariance()
        scale = np.sqrt(np.diag(covariance))
        with np.errstate(invalid="ignore", divide="ignore"):
            values = covariance / np.outer(scale, scale)
        bad = ~np.isfinite(values)
        if bad.any():
            values = values.copy()
            values[bad] = 0.0
        np.fill_diagonal(values, 1.0)
        # np.corrcoef clips rounding excursions outside [-1, 1]; match it.
        np.clip(values, -1.0, 1.0, out=values)
        return CorrelationMatrix(labels=self.labels, values=values)
