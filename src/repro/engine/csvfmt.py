"""Vectorised fixed-format CSV row encoding, byte-identical to ``np.savetxt``.

Every fleet export path renders host rows with the printf format
:data:`~repro.engine.writer.HOST_CSV_FMT` (``%d,%.1f,%.1f,%.1f,%.2f``).
``np.savetxt`` applies that format one Python ``%`` call per row, which
profiles as ~85 % of ``fleet export`` wall-clock — far more than generating
the hosts.  :func:`encode_csv_rows` produces the *same bytes* in a handful
of whole-column numpy passes: it computes every field's correctly-rounded
scaled integer, lays the variable-width rows out with a cumulative-offset
pass, and scatters digit characters straight into one ``uint8`` buffer.

Byte identity is the hard constraint (export manifests pin payload sha256
digests), and it hinges on exact rounding:

* ``%.df`` prints the decimal expansion of the *binary* double, correctly
  rounded to ``d`` fractional digits with ties to even.  That equals
  round-half-even of the exact product ``x * 10**d`` — and on platforms
  where ``np.longdouble`` carries a >= 60-bit mantissa the product of a
  53-bit double with ``10`` or ``100`` (4 and 7 extra bits) is *exact* in
  long double, so ``np.rint`` over long doubles reproduces printf's
  rounding bit for bit.
* ``%d`` truncates toward zero (``np.trunc``), and an integral ``0`` never
  prints a sign even for negative inputs, while ``%.df`` signs anything
  with the sign bit set (``-0.04`` → ``-0.0``).

Inputs outside the fast path — non-finite values, magnitudes at or above
:data:`FAST_PATH_LIMIT` (where scaled integers stop fitting comfortably in
``int64`` and ``%.1f`` starts printing hundreds of digits), or a platform
whose long double adds no precision — fall back to CPython's own ``%``
formatting applied to whole chunks at once, which is identical by
construction (it is the same code path ``np.savetxt`` uses, minus the
per-row driver loop).
"""

from __future__ import annotations

import re

import numpy as np

#: Magnitudes at or above this leave the vectorised path: the widest
#: fast-path field scale (100, see :data:`_MAX_FAST_DECIMALS`) times this
#: stays well inside int64, and the digit tables below cover every width
#: that can occur underneath it.
FAST_PATH_LIMIT = 1e15

#: Fractional digits beyond this route the whole call to the fallback:
#: the exactness argument (53-bit double times 10**d fits a >=60-bit
#: long-double mantissa) holds for d <= 2, and larger scales would also
#: push scaled integers toward int64 overflow below FAST_PATH_LIMIT.
_MAX_FAST_DECIMALS = 2

#: ``10**k`` for ``k`` in 1..18 — ``searchsorted`` against this gives the
#: decimal digit count of any non-negative int64 below ``FAST_PATH_LIMIT``
#: after scaling.
_POW10 = 10 ** np.arange(1, 19, dtype=np.int64)

#: Whether ``np.longdouble`` products of a double with 10/100 are exact
#: (53 + 7 bits must fit the mantissa); x86 extended (64 bits) and IEEE
#: quad (113 bits) qualify, double-double and plain-double builds do not.
_EXACT_LONGDOUBLE = np.finfo(np.longdouble).nmant >= 60

#: Rows encoded per fallback ``%`` call / per streaming write, bounding
#: peak string memory without giving up whole-chunk formatting.
_CHUNK_ROWS = 65536

_SPEC_TOKEN = re.compile(r"^%(?:d|\.(\d+)f)$")


def parse_row_format(fmt: str) -> "tuple[int | None, ...]":
    """Decimal counts of a ``%d``/``%.Nf`` comma-joined row format.

    Returns one entry per field: ``None`` for ``%d``, the fractional digit
    count for ``%.Nf``.  Anything else is outside the encoder's contract
    and raises ``ValueError`` (callers should fall back to ``np.savetxt``
    for exotic formats rather than guess).
    """
    specs: "list[int | None]" = []
    for token in fmt.split(","):
        match = _SPEC_TOKEN.match(token)
        if match is None:
            raise ValueError(
                f"unsupported row format token {token!r}; the vectorised "
                "encoder handles %d and %.Nf fields"
            )
        specs.append(None if match.group(1) is None else int(match.group(1)))
    return tuple(specs)


def _encode_rows_fallback(matrix: np.ndarray, fmt: str) -> bytes:
    """CPython ``%`` formatting applied whole chunks at a time.

    Identical to ``np.savetxt`` output by construction — the same format
    machinery runs over the same doubles — but one ``%`` call per
    ``_CHUNK_ROWS`` rows instead of one per row.
    """
    pieces: "list[bytes]" = []
    template_full = (fmt + "\n") * _CHUNK_ROWS
    for lo in range(0, matrix.shape[0], _CHUNK_ROWS):
        chunk = matrix[lo : lo + _CHUNK_ROWS]
        template = (
            template_full
            if chunk.shape[0] == _CHUNK_ROWS
            else (fmt + "\n") * chunk.shape[0]
        )
        pieces.append((template % tuple(chunk.ravel().tolist())).encode("ascii"))
    return b"".join(pieces)


def _scaled_fields(matrix: np.ndarray, specs) -> "list[tuple]":
    """Per field: ``(negative mask, |int part|, |fraction|, digit count, width)``."""
    fields = []
    for j, decimals in enumerate(specs):
        x = matrix[:, j]
        if decimals is None:
            value = np.trunc(x).astype(np.int64)
            negative = value < 0  # an integral 0 prints unsigned
            magnitude = np.abs(value)
            int_part, fraction = magnitude, None
            extra = 0
        else:
            scale = 10**decimals
            # Exact in long double (53 + <=7 bits), so rint reproduces
            # printf's correctly-rounded ties-to-even decimal.
            scaled = np.rint(x.astype(np.longdouble) * scale).astype(np.int64)
            negative = np.signbit(x)  # %.1f signs -0.04 as "-0.0"
            magnitude = np.abs(scaled)
            int_part, fraction = magnitude // scale, magnitude % scale
            extra = decimals + 1  # "." plus the fixed fractional digits
        digits = np.searchsorted(_POW10, int_part, side="right") + 1
        width = digits + negative + extra
        fields.append((negative, int_part, fraction, digits, width))
    return fields


def encode_csv_rows(matrix: "np.ndarray", fmt: str) -> bytes:
    """Render ``matrix`` rows through ``fmt`` (+ ``\\n``), byte-identical
    to ``np.savetxt(handle, matrix, fmt=fmt)``.

    ``matrix`` must be a 2-D float array with one column per format field.
    Finite, moderate values take the vectorised digit-scatter path; any
    non-finite or huge value routes the whole call through the chunked
    CPython fallback (still byte-identical, still far cheaper than the
    per-row ``np.savetxt`` loop).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D row matrix, got shape {matrix.shape}")
    specs = parse_row_format(fmt)
    if matrix.shape[1] != len(specs):
        raise ValueError(
            f"matrix has {matrix.shape[1]} columns for {len(specs)} format fields"
        )
    if matrix.shape[0] == 0:
        return b""
    if (
        not _EXACT_LONGDOUBLE
        or any(d is not None and d > _MAX_FAST_DECIMALS for d in specs)
        or not np.all(np.isfinite(matrix) & (np.abs(matrix) < FAST_PATH_LIMIT))
    ):
        return _encode_rows_fallback(matrix, fmt)

    fields = _scaled_fields(matrix, specs)
    widths = np.column_stack([field[4] for field in fields])
    # Cumulative end offset of each field *including* its one-byte
    # separator (',' between fields, '\n' after the last).
    ends = np.cumsum(widths + 1, axis=1)
    row_lengths = ends[:, -1].copy()
    row_starts = np.concatenate(([0], np.cumsum(row_lengths)[:-1]))
    ends += row_starts[:, None]

    out = np.empty(int(row_lengths.sum()), dtype=np.uint8)
    out[ends[:, :-1] - 1] = ord(",")
    out[ends[:, -1] - 1] = ord("\n")
    for j, decimals in enumerate(specs):
        negative, int_part, fraction, digits, _ = fields[j]
        last = ends[:, j] - 2  # last character of the field
        if decimals is not None:
            for k in range(decimals):
                fraction, digit = np.divmod(fraction, 10)
                out[last - k] = 48 + digit
            last = last - decimals  # the decimal point's position
            out[last] = ord(".")
            last = last - 1  # ones digit of the integer part
        for k in range(int(digits.max())):
            int_part, digit = np.divmod(int_part, 10)
            if k == 0:
                out[last] = 48 + digit
            else:
                covered = digits > k
                out[last[covered] - k] = 48 + digit[covered]
        if negative.any():
            out[(last - digits)[negative]] = ord("-")
    return out.tobytes()
