"""Distributed fleet export: a coordinator/worker reduction backend.

``generate_sharded`` and the writer fan work out to processes on one
machine; this module crosses the machine boundary.  A coordinator owns
the export: it partitions the RNG-block space into *leases*, hands them
to workers over a length-prefixed JSON protocol, and folds the results
back through the ``to_state()``/``from_state()`` serialization contract
(:mod:`repro.stats.state`) — exactly the payloads the checkpoint layer
persists to disk, now travelling a socket instead.

Topology
--------
Workers speak the same protocol whichever way the TCP connection was
established:

* ``export_fleet_distributed(..., workers=N)`` spawns N local worker
  processes (``multiprocessing``, honouring the engine's start-method
  override) that dial the coordinator's loopback listener and write
  their block segments straight into ``out_dir``.
* ``serve_worker(host, port)`` (CLI: ``fleet serve-worker``) listens for
  a coordinator; ``export_fleet_distributed(..., connect=[(host, port)])``
  dials it.  Attached workers ship segment bytes inline (base64) because
  they cannot assume a shared filesystem.

Protocol
--------
Frames are ``>I`` length-prefixed UTF-8 JSON objects capped at
:data:`MAX_FRAME_BYTES`; a connection that closes mid-header or mid-body
is a *torn frame* and raises :class:`ProtocolError`, as do oversized,
empty, non-JSON and non-object frames.  The worker speaks first::

    worker → hello {protocol, token?}   coordinator → job {params, seed, token?, ...}
    worker → ready                      coordinator → assign {block_lo, block_hi}
    worker → result {blocks, reducers}     ... repeat ...
    worker → heartbeat (background thread, any time)
    worker → drain (finish held leases, deregister cleanly)
                                        coordinator → heartbeat (liveness beacon)
                                        coordinator → shutdown

Authentication
--------------
When a shared token is configured (:func:`resolve_fleet_token`:
``--token-file`` beats the ``REPRO_FLEET_TOKEN`` environment variable)
both directions check it with a constant-time compare: the coordinator
drops a ``hello`` whose token is wrong or missing
(:class:`AuthenticationError`), and a token-holding worker refuses a
``job`` frame that fails the same check — without telling the
unauthenticated coordinator why.  The token travels the wire in clear
text; deploy on trusted networks or behind a TLS tunnel.

Backpressure and drain
----------------------
Each worker holds at most ``lease_depth`` leases in flight (``ready``
frames are credits; the coordinator never assigns beyond them).  A
draining worker (``serve_worker(drain_event=...)``, SIGTERM on the CLI)
finishes the leases it holds, sends ``drain`` instead of the next
``ready``, and deregisters without tripping failure reassignment.

Failure semantics
-----------------
The coordinator tracks per-worker liveness (last frame seen).  A dropped
connection, a protocol violation, an authentication failure, a reducer
payload that fails ``ReducerSet.from_state`` (corrupt or
version-mismatched state) or a heartbeat gap beyond ``worker_timeout``
retires the worker and requeues its outstanding leases.  Workers apply
the same deadline in reverse: the job frame carries ``worker_timeout``,
the coordinator heartbeats every :data:`HEARTBEAT_INTERVAL` seconds, and
a worker that sees no frame for ``worker_timeout`` declares the
coordinator dead and abandons the job instead of wedging forever.  When
the lease queue drains while stragglers still hold leases, idle workers
steal the oldest outstanding lease (speculative re-execution); the
determinism contract makes duplicates byte-identical, so the first
result wins and later ones are discarded.  The run fails only when *no*
workers remain.

Resumable runs
--------------
Before any worker spawns the coordinator writes a plan
(:data:`DISTRIBUTED_PLAN_NAME`, kind ``FleetDistributedPlan``) pinning
the run parameters, then appends one ``FleetLeaseCheckpoint`` envelope
line to :data:`DISTRIBUTED_LEASE_LOG` per completed lease — the same
``stats/state.py`` envelope contract the PR 3 checkpoint layer uses.
:func:`resume_fleet_distributed` (CLI: ``fleet export --backend
distributed --resume``) validates the plan against the generator,
re-verifies every checkpointed block file on disk, restores the reducer
states, and re-leases only the incomplete ranges; a torn final log line
(the coordinator died mid-append) is discarded and its lease re-run.
Both files are removed when the manifest is finalised.

Observability
-------------
The coordinator collects per-lease timings, per-worker frame/lease
counters, heartbeat-gap histograms and requeue/steal/drain counts into a
``FleetDistributedMetrics`` JSON document, embedded in
:class:`DistributedExportResult` and optionally written to
``metrics_path`` (CLI: ``--metrics PATH``) for a future ``fleet serve``
scraper.

Byte identity
-------------
Every block's bytes are a pure function of ``(parameters, when, size,
seed)``, so worker placement, crashes, steals, drains and resumes cannot
change the export: the manifest is byte-identical to
``export_fleet_blocks(shards=1, checkpoint_every=0)`` and the CSV
concatenation (hence ``payload_sha256`` and ``fleet_sha256``) to the
single-process ``export_fleet`` of the same fleet.  Statistics merge
lease states in block order, so they are bit-identical across worker
counts and failure schedules too.
"""

from __future__ import annotations

import base64
import functools
import hashlib
import hmac
import json
import os
import signal
import socket
import struct
import threading
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Queue

import numpy as np

from repro.engine.accumulate import CorrelationAccumulator, MomentAccumulator
from repro.engine.pool import discard_pool, get_pool, persistence_enabled
from repro.engine.retry import (
    DIAL_RETRY,
    RECONNECT_RETRY,
    WORKER_RECONNECT_ATTEMPTS,
    RetryError,
)
from repro.engine.reduce import ChunkedFold, QuantileReducer, ReducerSet
from repro.engine.sharding import (
    FleetStatistics,
    _pool_context,
    _resolve_factories,
    _when_as_float,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    population_digest,
)
from repro.engine.csvfmt import encode_csv_rows
from repro.engine.table import block_schema, generator_schema
from repro.engine.writer import (
    MANIFEST_VERSION,
    FleetManifest,
    SegmentRecord,
    _block_name,
    _generator_fingerprint,
    _hash_file_into,
    _load_json,
    _read_matching_block,
    _remove_quiet,
    _write_json_atomic,
)
from repro.faults.injector import fire as _fire
from repro.faults.injector import plan_is_active
from repro.faults.sites import (
    KIND_FRAME_CORRUPT,
    KIND_FRAME_DROP,
    KIND_HEARTBEAT_STALL,
    SITE_CONNECT_DIAL,
    SITE_COORDINATOR_CHECKPOINT,
    SITE_FRAME_RECV,
    SITE_FRAME_SEND,
    SITE_HEARTBEAT,
    SITE_WORKER_BLOCK,
    SITE_WORKER_DIAL,
)
from repro.stats.state import StateError, make_envelope, require_state, state_field

#: Wire protocol schema version; hello/job frames carry and check it.
#: v2 added token auth, coordinator heartbeats, worker read deadlines,
#: lease-depth credits and the drain frame.
PROTOCOL_VERSION = 2

#: Frame length prefix: 4-byte big-endian unsigned length.
_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON body.  A lease result with inline
#: segment data is ~200 KiB per block, so the default 8-block lease stays
#: three orders of magnitude under this; anything larger is a corrupt or
#: hostile length prefix, not a real message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Blocks per lease — the scheduling granule.  Smaller leases rebalance
#: stragglers faster; larger leases amortise protocol round trips.
DEFAULT_LEASE_BLOCKS = 4

#: Leases a worker may hold in flight (its backpressure bound).  1 keeps
#: the strict ready→assign→result lockstep; 2 lets the coordinator
#: pipeline the next assign while the worker generates.
DEFAULT_LEASE_DEPTH = 1

#: Seconds of frame silence after which a peer is declared dead — applied
#: by the coordinator to workers and (since the job frame carries it) by
#: workers to the coordinator.
DEFAULT_WORKER_TIMEOUT = 60.0

#: Cadence of the background heartbeat beacons (both directions).
HEARTBEAT_INTERVAL = 2.0

#: Age an outstanding lease must reach before an idle worker steals it.
STEAL_AFTER = 5.0

#: Environment variable supplying the shared fleet token.
FLEET_TOKEN_ENV = "REPRO_FLEET_TOKEN"

#: Plan file a distributed run writes before spawning workers; its
#: presence (without a final manifest) marks an interrupted run.  Named
#: distinctly from the writer's ``manifest.partial.json`` so
#: ``resume_export`` and ``resume_fleet_distributed`` cannot mistake one
#: another's layouts.
DISTRIBUTED_PLAN_NAME = "distributed-plan.json"

#: Append-only lease checkpoint log (one JSON envelope per line).
DISTRIBUTED_LEASE_LOG = "distributed-leases.jsonl"

#: Envelope kinds of the distributed plan/checkpoint/metrics payloads.
DISTRIBUTED_PLAN_KIND = "FleetDistributedPlan"
LEASE_CHECKPOINT_KIND = "FleetLeaseCheckpoint"
DISTRIBUTED_METRICS_KIND = "FleetDistributedMetrics"

#: Schema version of the distributed plan/checkpoint/metrics envelopes.
DISTRIBUTED_STATE_VERSION = 1

#: Upper edges (seconds) of the heartbeat-gap histogram buckets; the
#: final bucket is open-ended.  Gaps land left of the first edge when the
#: fleet is healthy (heartbeats every :data:`HEARTBEAT_INTERVAL` s).
HEARTBEAT_GAP_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)

#: Reducers that may travel the wire by *name* (the job frame carries
#: names, never callables — workers instantiate from this registry, so a
#: coordinator cannot make a worker run arbitrary code).
WIRE_REDUCER_FACTORIES = {
    "moments": MomentAccumulator,
    "correlation": CorrelationAccumulator,
    "quantiles": QuantileReducer,
}

#: Generators that may travel the wire by *name*: ``{wire_name:
#: builder(params_json) -> generator}``.  Populated by
#: :func:`register_wire_generator` (the scenario registry registers its
#: generators on import); the host-resource default is resolved lazily in
#: :func:`_resolve_wire_generator` so the engine package stays importable
#: without the model layer.
WIRE_GENERATOR_BUILDERS: "dict[str, object]" = {}


def register_wire_generator(name: str, builder) -> None:
    """Allow a generator family onto the wire under ``name``.

    ``builder`` takes the job's ``params`` JSON string and returns a
    generator.  Like reducers, generators travel by name — a coordinator
    can only select from what the worker has registered, never ship code.
    """
    existing = WIRE_GENERATOR_BUILDERS.get(name)
    if existing is not None and existing is not builder:
        raise ValueError(f"wire generator {name!r} is already registered")
    WIRE_GENERATOR_BUILDERS[name] = builder


def _build_host_generator(params_json: str):
    # Imported lazily: the engine package must stay importable without
    # dragging the model layer in, and only workers rebuild generators.
    from repro.core.generator import CorrelatedHostGenerator
    from repro.core.parameters import ModelParameters

    return CorrelatedHostGenerator(ModelParameters.from_json(params_json))


def _resolve_wire_generator(name):
    """The builder for a wire generator name, or ``None`` if unknown.

    Unknown names trigger one lazy import of :mod:`repro.scenarios` (whose
    import registers the scenario generators) before giving up.
    """
    if name == "CorrelatedHostGenerator":
        return _build_host_generator
    builder = WIRE_GENERATOR_BUILDERS.get(name)
    if builder is None:
        try:
            import repro.scenarios  # noqa: F401  (registers on import)
        except ImportError:
            return None
        builder = WIRE_GENERATOR_BUILDERS.get(name)
    return builder


def _wire_reducer_spec(name: str, factory) -> "list":
    """Encode one reducer factory's constructor arguments for the wire.

    A factory is either a :data:`WIRE_REDUCER_FACTORIES` class itself
    (``[]``) or a ``functools.partial`` of one whose positional arguments
    are label tuples or numeric scalars (the scenario profiles).  Anything
    else cannot travel a JSON wire and raises :class:`ValueError`.
    """
    base = factory
    args: "tuple" = ()
    if isinstance(base, functools.partial):
        if base.keywords:
            raise ValueError(
                f"reducer {name!r} cannot travel the wire: partial keywords "
                "are not supported"
            )
        args = base.args
        base = base.func
    if WIRE_REDUCER_FACTORIES.get(name) is not base:
        raise ValueError(
            f"reducer {name!r} cannot travel the wire; the distributed "
            f"backend ships names from {sorted(WIRE_REDUCER_FACTORIES)}"
        )
    encoded: "list" = []
    for arg in args:
        if isinstance(arg, (list, tuple)) and all(
            isinstance(item, str) for item in arg
        ):
            encoded.append(list(arg))
        elif isinstance(arg, (int, float)) and not isinstance(arg, bool):
            encoded.append(arg)
        else:
            raise ValueError(
                f"reducer {name!r} argument {arg!r} cannot travel the wire "
                "(label lists and numeric scalars only)"
            )
    return encoded


def _rebuild_wire_factory(cls, raw):
    """Rebuild a reducer factory from its :func:`_wire_reducer_spec` form.

    ``None``/``[]`` mean the bare registry class; label lists come back as
    tuples.  Malformed payloads raise :class:`ValueError`.
    """
    if not raw:
        return cls
    if not isinstance(raw, list):
        raise ValueError(f"reducer argument payload must be a list, got {raw!r}")
    args: "list" = []
    for item in raw:
        if isinstance(item, list) and all(isinstance(v, str) for v in item):
            args.append(tuple(item))
        elif isinstance(item, (int, float)) and not isinstance(item, bool):
            args.append(item)
        else:
            raise ValueError(f"malformed wire reducer argument {item!r}")
    return functools.partial(cls, *args)


def _wire_reducer_args(factories: dict) -> "dict[str, list]":
    """The job/plan ``reducer_args`` field for a validated factory dict."""
    return {
        name: _wire_reducer_spec(name, factory)
        for name, factory in sorted(factories.items())
    }


class ProtocolError(RuntimeError):
    """A frame violated the length-prefixed JSON wire protocol."""


class AuthenticationError(ProtocolError):
    """A peer failed the shared-token check."""


def resolve_fleet_token(token_file: "str | None" = None) -> "str | None":
    """The shared fleet token, or ``None`` when auth is not configured.

    ``token_file`` (CLI ``--token-file``) wins over the
    :data:`FLEET_TOKEN_ENV` environment variable; surrounding whitespace
    is stripped so a trailing newline in the file is harmless.  An
    unreadable file raises :class:`OSError`; a file or variable that is
    set but blank raises :class:`ValueError` — silently running
    unauthenticated when the operator configured a token would be worse
    than failing.
    """
    if token_file is not None:
        with open(token_file, "r", encoding="utf-8") as handle:
            token = handle.read().strip()
        if not token:
            raise ValueError(f"token file {token_file} is empty")
        return token
    raw = os.environ.get(FLEET_TOKEN_ENV)
    if raw is None:
        return None
    token = raw.strip()
    if not token:
        raise ValueError(f"{FLEET_TOKEN_ENV} is set but blank")
    return token


def _token_matches(expected: str, supplied) -> bool:
    """Constant-time token comparison (False for non-string payloads)."""
    if not isinstance(supplied, str):
        return False
    return hmac.compare_digest(
        supplied.encode("utf-8"), expected.encode("utf-8")
    )


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise one protocol message and write it to the socket."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send an oversized frame ({len(body)} bytes > "
            f"{MAX_FRAME_BYTES})"
        )
    firing = _fire(SITE_FRAME_SEND)
    if firing is not None:
        if firing.kind == KIND_FRAME_DROP:
            # A frame lost with the connection still healthy could wedge
            # the lease protocol forever (a dropped ``ready`` starves the
            # coordinator of credits).  Real networks do not lose one
            # frame from an otherwise-ordered TCP stream either — they
            # lose the connection.  Model that: drop the frame *and* the
            # socket, so both peers' failure detection converges.
            sock.close()
            raise OSError("fault injection: frame dropped, connection torn down")
        if firing.kind == KIND_FRAME_CORRUPT:
            body = bytes([body[0] ^ 0xFF]) + body[1:]
    sock.sendall(_FRAME_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> "dict | None":
    """Read one protocol message; ``None`` on a clean EOF between frames.

    A connection that closes *inside* a frame (torn header or body), a
    length prefix of zero or beyond :data:`MAX_FRAME_BYTES`, or a body
    that is not a JSON object all raise :class:`ProtocolError`.
    """
    _fire(SITE_FRAME_RECV)
    header = _recv_exact(sock, _FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("empty frame (zero-length prefix)")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"oversized frame: length prefix {length} exceeds "
            f"{MAX_FRAME_BYTES} bytes"
        )
    body = _recv_exact(sock, length, allow_eof=False)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _recv_exact(sock: socket.socket, n: int, allow_eof: bool) -> "bytes | None":
    """Read exactly ``n`` bytes; torn reads raise, clean EOF may return None."""
    pieces: "list[bytes]" = []
    remaining = n
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError(
                f"torn frame: connection closed with {remaining} of {n} "
                "bytes outstanding"
            )
        pieces.append(piece)
        remaining -= len(piece)
    return b"".join(pieces)


def parse_endpoint(spec: str) -> "tuple[str, int]":
    """Parse a ``HOST:PORT`` worker endpoint, validating the port range."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker endpoint {spec!r} is not of the form HOST:PORT")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"worker endpoint {spec!r} has a non-integer port")
    if not 1 <= port <= 65535:
        raise ValueError(
            f"worker endpoint {spec!r} port must be in [1, 65535], got {port}"
        )
    return host, port


# -- worker ------------------------------------------------------------------


def _render_block_csv(block) -> bytes:
    """A block's CSV rows, byte-identical to every other export path."""
    return encode_csv_rows(block.to_matrix(), block_schema(block).csv_fmt)


def _heartbeat_loop(send, stop: threading.Event, interval: float) -> None:
    while not stop.wait(interval):
        firing = _fire(SITE_HEARTBEAT)
        if firing is not None and firing.kind == KIND_HEARTBEAT_STALL:
            # The beacon thread dies silently; the peer's worker_timeout
            # failure detector is what is under test.
            return
        try:
            send({"type": "heartbeat"})
        except OSError:
            return


def _worker_loop(
    sock: socket.socket,
    token: "str | None" = None,
    drain_event: "threading.Event | None" = None,
    drain_after: "int | None" = None,
) -> None:
    """Serve one coordinator over an established connection.

    Sends ``hello`` (carrying ``token`` when auth is configured),
    receives the job, then pipelines up to the job's ``lease_depth``
    leases: each ``ready`` is a credit the coordinator answers with an
    ``assign``, and results flow back as leases finish.  A background
    thread heartbeats every :data:`HEARTBEAT_INTERVAL` seconds so slow
    block generation never reads as death; symmetrically, the job's
    ``worker_timeout`` bounds how long a silent coordinator is trusted
    before the worker abandons the job (:class:`ProtocolError`).  Job
    problems (protocol/block-size/reducer-name mismatches) are reported
    with an ``error`` frame rather than silence; a job that fails the
    token check raises :class:`AuthenticationError` without explaining
    itself to the unauthenticated coordinator.

    When ``drain_event`` fires (or ``drain_after`` completed leases are
    reached) the worker finishes the leases it holds, sends ``drain``
    and returns — a clean deregistration, not a failure.
    """
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()

    def send(message: dict) -> None:
        with send_lock:
            send_frame(sock, message)

    # A connection that never sends the job (port scanner, half-open
    # leftover of a crashed coordinator) must not wedge this worker
    # forever: bound the handshake with the default deadline, then switch
    # to the job's worker_timeout for the rest of the session.
    sock.settimeout(DEFAULT_WORKER_TIMEOUT)
    hello = {"type": "hello", "protocol": PROTOCOL_VERSION, "pid": os.getpid()}
    if token is not None:
        hello["token"] = token
    send(hello)
    job = recv_frame(sock)
    if job is None:
        return
    if job.get("type") != "job":
        raise ProtocolError(f"expected a job frame, got {job.get('type')!r}")
    if token is not None and not _token_matches(token, job.get("token")):
        raise AuthenticationError(
            "coordinator failed the shared-token check; refusing its job"
        )

    def refuse(message: str) -> None:
        send({"type": "error", "message": message})

    if job.get("protocol") != PROTOCOL_VERSION:
        return refuse(
            f"coordinator speaks protocol {job.get('protocol')!r}; this "
            f"worker speaks {PROTOCOL_VERSION}"
        )
    if job.get("block_size") != RNG_BLOCK_SIZE:
        return refuse(
            f"coordinator fleet uses RNG block size {job.get('block_size')!r}; "
            f"this worker generates {RNG_BLOCK_SIZE} and would corrupt the export"
        )
    if job.get("format") != "csv":
        return refuse(f"unsupported segment format {job.get('format')!r}")
    generator_name = job.get("generator", "CorrelatedHostGenerator")
    builder = _resolve_wire_generator(generator_name)
    if builder is None:
        return refuse(
            f"unknown wire generator {generator_name!r}; this worker only "
            "builds registered generator families"
        )
    factories = {}
    reducer_args = job.get("reducer_args", {})
    if not isinstance(reducer_args, dict):
        return refuse("malformed job: reducer_args must be an object")
    for name in job.get("reducers", []):
        factory = WIRE_REDUCER_FACTORIES.get(name)
        if factory is None:
            return refuse(
                f"unknown wire reducer {name!r}; this worker knows "
                f"{sorted(WIRE_REDUCER_FACTORIES)}"
            )
        try:
            factories[name] = _rebuild_wire_factory(factory, reducer_args.get(name))
        except ValueError as error:
            return refuse(f"malformed job: {error}")
    try:
        generator = builder(job["params"])
        size = int(job["size"])
        when = float(job["when"])
        chunk_size = int(job["chunk_size"])
        worker_timeout = float(job.get("worker_timeout", DEFAULT_WORKER_TIMEOUT))
        lease_depth = int(job.get("lease_depth", DEFAULT_LEASE_DEPTH))
        root = np.random.SeedSequence(
            entropy=int(job["entropy"]),
            spawn_key=tuple(int(k) for k in job["spawn_key"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        return refuse(f"malformed job: {error}")
    if not worker_timeout > 0:
        return refuse(f"malformed job: worker_timeout must be positive")
    if lease_depth < 1:
        return refuse(f"malformed job: lease_depth must be at least 1")
    # The coordinator beacons every HEARTBEAT_INTERVAL, so a worker that
    # sees nothing for worker_timeout is orphaned (dead or partitioned
    # coordinator) and must exit rather than wedge a serve-worker slot.
    sock.settimeout(worker_timeout)
    seeds = block_seeds(root, size)
    out_dir = job.get("out_dir")
    fault_after = job.get("fault_after")

    stop = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop, args=(send, stop, HEARTBEAT_INTERVAL), daemon=True
    )
    heartbeat.start()
    written = 0
    leases_done = 0
    credits = 0
    assigned: "deque[tuple[int, int]]" = deque()
    try:
        while True:
            draining = (drain_event is not None and drain_event.is_set()) or (
                drain_after is not None and leases_done >= drain_after
            )
            if draining and not assigned:
                send({"type": "drain"})
                return
            while not draining and credits + len(assigned) < lease_depth:
                send({"type": "ready"})
                credits += 1
            if not assigned:
                try:
                    message = recv_frame(sock)
                except TimeoutError:
                    raise ProtocolError(
                        f"coordinator sent no frame for {worker_timeout:.0f} s; "
                        "presuming it dead and abandoning the job"
                    )
                if message is None or message.get("type") == "shutdown":
                    return
                if message.get("type") == "heartbeat":
                    continue
                if message.get("type") != "assign":
                    raise ProtocolError(
                        f"expected assign/heartbeat/shutdown, got "
                        f"{message.get('type')!r}"
                    )
                credits -= 1
                assigned.append(
                    (int(message["block_lo"]), int(message["block_hi"]))
                )
                continue
            lo, hi = assigned.popleft()
            reducers = ReducerSet.from_factories(factories)
            fold = ChunkedFold(reducers, chunk_size)
            blocks: "list[dict]" = []
            for index in range(lo, hi):
                row_lo = index * RNG_BLOCK_SIZE
                block = generator.generate(
                    when,
                    min(RNG_BLOCK_SIZE, size - row_lo),
                    np.random.default_rng(seeds[index]),
                )
                data = _render_block_csv(block)
                entry = {
                    "index": index,
                    "sha256": hashlib.sha256(data).hexdigest(),
                    "bytes": len(data),
                    "digest": population_digest(block),
                }
                if out_dir:
                    with open(
                        os.path.join(out_dir, _block_name(index, "csv")), "wb"
                    ) as handle:
                        handle.write(data)
                else:
                    entry["data"] = base64.b64encode(data).decode("ascii")
                blocks.append(entry)
                fold.add(block)
                written += 1
                _fire(SITE_WORKER_BLOCK)
                if fault_after is not None and written >= int(fault_after):
                    # Crash injection for the tests/CI: die the hard way,
                    # exactly like an OOM-killed or power-cycled worker.
                    os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
            fold.flush()
            send(
                {
                    "type": "result",
                    "block_lo": lo,
                    "block_hi": hi,
                    "blocks": blocks,
                    "reducers": reducers.to_state(),
                }
            )
            leases_done += 1
    finally:
        stop.set()


def _dial(host: str, port: int, site: str, timeout: "float | None" = None):
    """One coordinator/worker dial under :data:`DIAL_RETRY`.

    The fault site fires *inside* each attempt, so a ``count``-limited
    ``dial-refuse`` spec exercises the retry policy end to end: the
    injected refusals burn attempts, then the real dial goes through.
    """

    def attempt() -> socket.socket:
        _fire(site)
        return socket.create_connection((host, port), timeout=timeout)

    return DIAL_RETRY.call(
        attempt,
        retry_on=(ConnectionError, TimeoutError),
        describe=f"dialling {host}:{port}",
    )


def _local_worker_main(host: str, port: int, token: "str | None" = None) -> None:
    """Entry point of a spawned local worker process (module-level so it
    pickles under every multiprocessing start method).

    The dial retries under :data:`DIAL_RETRY` — a worker that comes up
    before its coordinator listens must not die on the first
    ``ConnectionRefusedError``.  A connection lost *mid-job* gets a
    bounded reconnect window (:data:`WORKER_RECONNECT_ATTEMPTS` fresh
    dials under :data:`RECONNECT_RETRY`); the determinism contract makes
    the replayed leases byte-identical, so rejoining is always safe.
    """
    attempts = 1 + WORKER_RECONNECT_ATTEMPTS
    for attempt in range(attempts):
        try:
            if attempt == 0:
                sock = _dial(host, port, SITE_WORKER_DIAL)
            else:
                sock = RECONNECT_RETRY.call(
                    lambda: socket.create_connection((host, port)),
                    retry_on=(ConnectionError, TimeoutError),
                    describe=f"reconnecting to coordinator {host}:{port}",
                )
        except RetryError:
            return  # the coordinator tracks worker death through the socket
        try:
            _worker_loop(sock, token=token)
            return
        except (ProtocolError, OSError):
            continue  # lost the coordinator mid-job: try one fresh session
        finally:
            sock.close()


class _PooledWorkerHandle:
    """Process-shaped view of a local worker running inside the persistent
    pool, so the coordinator's liveness/teardown code needs no branches.

    ``is_alive`` maps to the task not having completed, ``join`` waits on
    the ``AsyncResult``, and ``terminate`` discards the whole pool — a
    single pool task cannot be killed, and a worker a caller wants dead is
    a worker the pool should not hand to the next fan-out anyway.
    """

    def __init__(self, pool, result):
        self._pool = pool
        self._result = result

    def is_alive(self) -> bool:
        return not self._result.ready()

    def join(self, timeout: "float | None" = None) -> None:
        try:
            self._result.get(timeout=timeout)
        except Exception:  # timeouts and worker errors surface elsewhere
            pass

    def terminate(self) -> None:
        discard_pool(self._pool)


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    max_jobs: "int | None" = 1,
    on_bound=None,
    token: "str | None" = None,
    drain_event: "threading.Event | None" = None,
    drain_after: "int | None" = None,
) -> int:
    """Listen for a coordinator and serve jobs (CLI: ``fleet serve-worker``).

    Serves ``max_jobs`` coordinator connections (``None`` = forever) and
    returns the number served.  ``on_bound`` (tests, supervisors) is
    called with the bound port once listening — useful with ``port=0``.
    A failed job (protocol violation, coordinator death) is logged to
    stderr and does not stop the next job; an unauthenticated coordinator
    (``token`` set, :class:`AuthenticationError`) is rejected without
    consuming a job slot.  ``drain_event`` (the CLI arms it on SIGTERM)
    drains the in-progress job gracefully and stops accepting;
    KeyboardInterrupt (Ctrl-C) stops the loop cleanly so the caller can
    print its served summary instead of a traceback.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    served = 0
    try:
        listener.bind((host, port))
        listener.listen(1)
        # Poll the listener so a drain request arriving between jobs is
        # honoured promptly instead of after the next coordinator dials.
        listener.settimeout(0.5)
        if on_bound is not None:
            on_bound(listener.getsockname()[1])
        while max_jobs is None or served < max_jobs:
            if drain_event is not None and drain_event.is_set():
                break
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            conn.settimeout(None)
            try:
                _worker_loop(
                    conn,
                    token=token,
                    drain_event=drain_event,
                    drain_after=drain_after,
                )
            except AuthenticationError as error:
                import sys

                sys.stderr.write(
                    f"serve-worker: rejected unauthenticated coordinator: "
                    f"{error}\n"
                )
                continue
            except (ProtocolError, StateError, OSError) as error:
                import sys

                sys.stderr.write(f"serve-worker: job failed: {error}\n")
            finally:
                conn.close()
            served += 1
    except KeyboardInterrupt:
        pass  # Ctrl-C: stop accepting; the caller prints the served summary
    finally:
        listener.close()
    return served


# -- coordinator -------------------------------------------------------------


@dataclass
class DistributedExportResult:
    """Outcome of a distributed fleet export.

    ``workers`` counts connections that completed the handshake;
    ``reassigned_leases`` counts leases requeued after a worker died plus
    leases stolen from stragglers by idle workers (graceful drains do not
    contribute).  ``metrics`` is the run's ``FleetDistributedMetrics``
    document (per-lease timings, heartbeat-gap histograms, per-worker
    counters); ``resumed_leases`` counts leases restored from the
    checkpoint log rather than re-run.
    """

    manifest: FleetManifest
    statistics: FleetStatistics
    workers: int
    reassigned_leases: int
    metrics: dict = field(default_factory=dict)
    resumed_leases: int = 0


class _Remote:
    """Coordinator-side state of one worker connection."""

    def __init__(self, sock: socket.socket, name: str, local: bool):
        self.sock = sock
        self.name = name
        self.local = local
        self.state = "hello"
        #: Outstanding leases held by this worker → monotonic assign time.
        self.leases: "dict[tuple[int, int], float]" = {}
        #: Unconsumed ``ready`` credits (assignable without overrunning
        #: the worker's in-flight cap).
        self.credits = 0
        self.last_seen = time.monotonic()
        self.idle = False
        self.alive = True


def _lease_ranges(n_blocks: int, lease_blocks: int) -> "list[tuple[int, int]]":
    return [
        (lo, min(lo + lease_blocks, n_blocks))
        for lo in range(0, n_blocks, lease_blocks)
    ]


def _decode_block_entries(
    blocks, lease: "tuple[int, int]", size: int, inline: bool
) -> "tuple[list[SegmentRecord], list[tuple[int, bytes]], list[tuple[int, bytes]]]":
    """Decode one lease's block entries into segment records and digests.

    Shared by live result validation and checkpoint-log restore: both
    carry the same ``{index, sha256, bytes, digest}`` entries, the former
    with inline base64 data for remote workers (``inline=True``).  Any
    malformed piece raises :class:`ProtocolError` (or the decode errors
    the callers map).
    """
    lo, hi = lease
    if not isinstance(blocks, list) or len(blocks) != hi - lo:
        raise ProtocolError(f"result must carry exactly {hi - lo} block entries")
    records: "list[SegmentRecord]" = []
    digests: "list[tuple[int, bytes]]" = []
    writes: "list[tuple[int, bytes]]" = []
    for position, raw in enumerate(blocks):
        index = lo + position
        if not isinstance(raw, dict) or raw.get("index") != index:
            raise ProtocolError(f"block entry {position} is not block {index}")
        digest = bytes.fromhex(raw["digest"])
        sha = raw["sha256"]
        nbytes = raw["bytes"]
        if not isinstance(sha, str) or len(bytes.fromhex(sha)) != 32:
            raise ProtocolError(f"block {index} sha256 is malformed")
        if not isinstance(nbytes, int) or isinstance(nbytes, bool) or nbytes < 0:
            raise ProtocolError(f"block {index} byte count is malformed")
        if inline:
            data = base64.b64decode(raw["data"], validate=True)
            if hashlib.sha256(data).hexdigest() != sha or len(data) != nbytes:
                raise ProtocolError(
                    f"block {index} inline data does not match its digest"
                )
            writes.append((index, data))
        records.append(
            SegmentRecord(
                path=_block_name(index, "csv"),
                shard=0,
                block_lo=index,
                block_hi=index + 1,
                row_lo=min(index * RNG_BLOCK_SIZE, size),
                row_hi=min((index + 1) * RNG_BLOCK_SIZE, size),
                sha256=sha,
                bytes=nbytes,
            )
        )
        digests.append((index, digest))
    return records, digests, writes


class _Coordinator:
    """Single-threaded scheduler over reader-thread-fed worker events."""

    def __init__(
        self,
        job: dict,
        leases: "list[tuple[int, int]]",
        out_dir: str,
        factories: dict,
        size: int,
        worker_timeout: float,
        fault_after: "int | None" = None,
        token: "str | None" = None,
        lease_depth: int = DEFAULT_LEASE_DEPTH,
        coordinator_fault_after: "int | None" = None,
        checkpoint_log=None,
        completed: "dict | None" = None,
    ):
        self.job = job
        self.leases = leases
        self.out_dir = out_dir
        self.factories = factories
        self.size = size
        self.worker_timeout = worker_timeout
        self.fault_after = fault_after
        self.fault_assigned = False
        self.token = token
        self.lease_depth = lease_depth
        self.coordinator_fault_after = coordinator_fault_after
        self.checkpoint_log = checkpoint_log
        self.events: Queue = Queue()
        self.remotes: "list[_Remote]" = []
        self.completed: "dict[tuple[int, int], dict]" = dict(completed or {})
        self.pending: "deque[tuple[int, int]]" = deque(
            lease for lease in leases if lease not in self.completed
        )
        self.requeued = 0
        self.stolen = 0
        self.drained = 0
        self.checkpointed = 0
        self.workers_seen = 0
        self.last_progress = time.monotonic()
        self.last_error: "BaseException | None" = None
        self.processes: "list" = []
        self.lease_events: "list[dict]" = []
        self.worker_metrics: "dict[str, dict]" = {}

    # -- connection plumbing -------------------------------------------------

    def attach(self, sock: socket.socket, name: str, local: bool) -> None:
        """Register an established connection and start its reader thread."""
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        remote = _Remote(sock, name, local)
        self.remotes.append(remote)
        threading.Thread(
            target=self._reader, args=(remote,), daemon=True
        ).start()

    def _reader(self, remote: _Remote) -> None:
        try:
            while True:
                message = recv_frame(remote.sock)
                if message is None:
                    self.events.put(("close", remote, None))
                    return
                self.events.put(("frame", remote, message))
        except (ProtocolError, OSError) as error:
            self.events.put(("close", remote, error))

    def _accept_loop(self, listener: socket.socket) -> None:
        try:
            while True:
                sock, _ = listener.accept()
                self.events.put(("connect", sock))
        except OSError:
            return  # listener closed — coordinator shutting down

    # -- scheduling ----------------------------------------------------------

    def _send(self, remote: _Remote, message: dict) -> bool:
        try:
            send_frame(remote.sock, message)
            return True
        except OSError as error:
            self._drop(remote, error)
            return False

    def _drop(self, remote: _Remote, error: "BaseException | str | None") -> None:
        """Retire a failed worker, recording its error and requeueing."""
        if not remote.alive:
            return
        if error is not None:
            self.last_error = (
                error if isinstance(error, BaseException) else RuntimeError(error)
            )
        self._release(remote)

    def _release(self, remote: _Remote) -> None:
        """Deregister a worker and requeue its outstanding leases.

        Shared by failure drops and graceful drains; a cleanly draining
        worker holds no leases by protocol, so the drain path normally
        requeues nothing (the cap race at ``lease_depth > 1`` — an assign
        in flight when the drain frame was sent — is the exception).
        """
        remote.alive = False
        remote.idle = False
        remote.credits = 0
        try:
            remote.sock.close()
        except OSError:
            pass
        outstanding = list(remote.leases)
        remote.leases.clear()
        requeued = False
        for lease in outstanding:
            if lease in self.completed:
                continue
            if any(r.alive and lease in r.leases for r in self.remotes):
                continue
            self.pending.appendleft(lease)
            self.requeued += 1
            requeued = True
        if requeued:
            for other in self.remotes:
                if other.alive and other.credits > 0:
                    self._offer(other)

    def _assign(self, remote: _Remote, lease: "tuple[int, int]") -> None:
        remote.credits -= 1
        remote.idle = remote.credits > 0
        remote.leases[lease] = time.monotonic()
        self._send(
            remote,
            {"type": "assign", "block_lo": lease[0], "block_hi": lease[1]},
        )

    def _offer(self, remote: _Remote) -> None:
        while remote.credits > 0 and self.pending:
            self._assign(remote, self.pending.popleft())
        remote.idle = remote.alive and remote.credits > 0

    def _steal(self, now: float) -> None:
        """Give fully idle workers the oldest outstanding straggler leases.

        Each pass spreads the idle workers across *distinct* stragglers
        (oldest first) — duplicating one straggler's lease onto every
        idle worker would triplicate its blocks while the other
        stragglers got no help at all.  Only workers holding no lease of
        their own steal, so speculation never competes with real work.
        """
        if self.pending:
            return
        taken: "set[tuple[int, int]]" = set()
        for remote in self.remotes:
            if not (
                remote.alive
                and remote.state == "active"
                and remote.credits > 0
                and not remote.leases
            ):
                continue
            candidates = [
                (started, lease)
                for other in self.remotes
                if other.alive and other is not remote
                for lease, started in other.leases.items()
                if lease not in self.completed
                and lease not in taken
                and now - started > STEAL_AFTER
            ]
            if not candidates:
                return
            started, lease = min(candidates)
            taken.add(lease)
            self.stolen += 1
            self._worker_entry(remote)["stolen_leases"] += 1
            self._assign(remote, lease)

    # -- metrics -------------------------------------------------------------

    def _worker_entry(self, remote: _Remote) -> dict:
        entry = self.worker_metrics.get(remote.name)
        if entry is None:
            entry = self.worker_metrics[remote.name] = {
                "local": remote.local,
                "frames": 0,
                "leases_completed": 0,
                "blocks_completed": 0,
                "stolen_leases": 0,
                "drained": False,
                "heartbeat_gap_histogram": [0] * (len(HEARTBEAT_GAP_BUCKETS) + 1),
                "max_frame_gap_seconds": 0.0,
            }
        return entry

    # -- frame handling ------------------------------------------------------

    def _handle_frame(self, remote: _Remote, message: dict) -> None:
        if not remote.alive:
            return
        now = time.monotonic()
        if remote.state == "active":
            gap = now - remote.last_seen
            entry = self._worker_entry(remote)
            entry["frames"] += 1
            entry["heartbeat_gap_histogram"][
                bisect_right(HEARTBEAT_GAP_BUCKETS, gap)
            ] += 1
            if gap > entry["max_frame_gap_seconds"]:
                entry["max_frame_gap_seconds"] = gap
        remote.last_seen = now
        self.last_progress = now
        kind = message.get("type")
        if kind == "hello":
            if remote.state != "hello":
                return self._drop(remote, f"{remote.name} sent a second hello")
            if message.get("protocol") != PROTOCOL_VERSION:
                return self._drop(
                    remote,
                    f"{remote.name} speaks protocol "
                    f"{message.get('protocol')!r}, not {PROTOCOL_VERSION}",
                )
            if self.token is not None and not _token_matches(
                self.token, message.get("token")
            ):
                return self._drop(
                    remote,
                    AuthenticationError(
                        f"{remote.name} failed authentication (bad or "
                        "missing worker token)"
                    ),
                )
            remote.state = "active"
            self.workers_seen += 1
            self._worker_entry(remote)
            job = dict(self.job)
            job["out_dir"] = self.out_dir if remote.local else None
            if self.fault_after is not None and remote.local and not self.fault_assigned:
                job["fault_after"] = self.fault_after
                self.fault_assigned = True
            self._send(remote, job)
        elif kind == "ready":
            if remote.state != "active":
                return self._drop(remote, f"{remote.name} sent ready before hello")
            remote.credits += 1
            if remote.credits + len(remote.leases) > self.lease_depth:
                return self._drop(
                    remote,
                    f"{remote.name} exceeded the in-flight lease cap "
                    f"({self.lease_depth})",
                )
            self._offer(remote)
        elif kind == "heartbeat":
            pass
        elif kind == "result":
            self._handle_result(remote, message)
        elif kind == "drain":
            if remote.state != "active":
                return self._drop(remote, f"{remote.name} sent drain before hello")
            self.drained += 1
            self._worker_entry(remote)["drained"] = True
            self._release(remote)
        elif kind == "error":
            self._drop(
                remote,
                f"worker {remote.name} refused the job: {message.get('message')}",
            )
        else:
            self._drop(remote, f"{remote.name} sent unknown frame type {kind!r}")

    def _handle_result(self, remote: _Remote, message: dict) -> None:
        lease = (message.get("block_lo"), message.get("block_hi"))
        if lease not in remote.leases:
            return self._drop(
                remote, f"{remote.name} sent a result for a lease it does not hold"
            )
        if lease in self.completed:
            del remote.leases[lease]
            return  # a speculative duplicate lost the race; first result won
        try:
            entry = self._validate_result(remote, lease, message)
        except (StateError, ProtocolError, ValueError, TypeError, KeyError) as error:
            # The lease is still attached to the remote here, so _drop
            # requeues it — clearing it first would leak the lease and
            # hang the export once the healthy workers drain the queue.
            return self._drop(
                remote, f"rejected result from {remote.name}: {error}"
            )
        started = remote.leases.pop(lease)
        for index, data in entry.pop("writes"):
            with open(
                os.path.join(self.out_dir, _block_name(index, "csv")), "wb"
            ) as handle:
                handle.write(data)
        self.completed[lease] = entry
        now = time.monotonic()
        self.last_progress = now
        self.lease_events.append(
            {
                "block_lo": lease[0],
                "block_hi": lease[1],
                "worker": remote.name,
                "seconds": now - started,
            }
        )
        stats = self._worker_entry(remote)
        stats["leases_completed"] += 1
        stats["blocks_completed"] += lease[1] - lease[0]
        self._checkpoint(lease, entry)

    def _checkpoint(self, lease: "tuple[int, int]", entry: dict) -> None:
        """Append one lease-completion envelope to the checkpoint log."""
        if self.checkpoint_log is None:
            return
        _fire(SITE_COORDINATOR_CHECKPOINT, path=self.checkpoint_log.name)
        self.checkpoint_log.write(_checkpoint_line(lease, entry))
        self.checkpoint_log.flush()
        self.checkpointed += 1
        if (
            self.coordinator_fault_after is not None
            and self.checkpointed >= self.coordinator_fault_after
        ):
            # Crash injection for the resume tests/CI: kill the
            # *coordinator* the hard way with the checkpoint durable.
            os.fsync(self.checkpoint_log.fileno())
            os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))

    def _validate_result(
        self, remote: _Remote, lease: "tuple[int, int]", message: dict
    ) -> dict:
        """Decode one lease result, mapping any malformed piece to an error.

        Returns the segment records, block digests, restored reducer set
        and (for inline transport) the decoded file bytes to write.  The
        reducer payload goes through :meth:`ReducerSet.from_state` here,
        so a corrupt or version-mismatched state is caught while we can
        still retire the worker and requeue its lease.
        """
        records, digests, writes = _decode_block_entries(
            message.get("blocks"), lease, self.size, inline=not remote.local
        )
        restored = ReducerSet.from_state(message["reducers"])
        if set(restored.names()) != set(self.factories):
            raise StateError(
                f"result reducers {sorted(restored.names())} do not match the "
                f"job's {sorted(self.factories)}"
            )
        return {
            "records": records,
            "digests": digests,
            "reducers": restored,
            "writes": writes,
        }

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        self.last_progress = time.monotonic()
        last_beat = self.last_progress
        while len(self.completed) < len(self.leases):
            try:
                event = self.events.get(timeout=0.2)
            except Empty:
                event = None
            if event is not None:
                if event[0] == "connect":
                    self.attach(event[1], f"local-{len(self.remotes)}", local=True)
                    self.last_progress = time.monotonic()
                elif event[0] == "frame":
                    self._handle_frame(event[1], event[2])
                elif event[0] == "close":
                    self._drop(event[1], event[2])
            now = time.monotonic()
            if now - last_beat >= HEARTBEAT_INTERVAL:
                # The reverse beacon: workers reset their read deadline on
                # any frame, so this is what keeps an idle (credit-holding)
                # worker from declaring a healthy coordinator dead.
                last_beat = now
                for remote in list(self.remotes):
                    if remote.alive and remote.state == "active":
                        self._send(remote, {"type": "heartbeat"})
            for remote in self.remotes:
                if remote.alive and now - remote.last_seen > self.worker_timeout:
                    self._drop(remote, f"{remote.name} heartbeat timeout")
            self._steal(now)
            if not any(remote.alive for remote in self.remotes):
                if any(process.is_alive() for process in self.processes):
                    if now - self.last_progress > self.worker_timeout:
                        if self.workers_seen == 0:
                            raise RuntimeError(
                                "distributed export stalled: no worker "
                                f"connected within {self.worker_timeout:.0f} s"
                            )
                        raise RuntimeError(
                            "distributed export stalled: workers went silent "
                            f"after completing {len(self.completed)}/"
                            f"{len(self.leases)} leases"
                        )
                    continue
                detail = f" (last error: {self.last_error})" if self.last_error else ""
                raise RuntimeError(
                    "all distributed workers died before completing the "
                    f"export{detail}"
                )
        for remote in self.remotes:
            if remote.alive:
                self._send(remote, {"type": "shutdown"})


# -- plan / checkpoint log ---------------------------------------------------


def _checkpoint_line(lease: "tuple[int, int]", entry: dict) -> str:
    """One ``FleetLeaseCheckpoint`` envelope as a checkpoint-log line."""
    blocks = [
        {
            "index": record.block_lo,
            "sha256": record.sha256,
            "bytes": record.bytes,
            "digest": digest.hex(),
        }
        for record, (_, digest) in zip(entry["records"], entry["digests"])
    ]
    payload = make_envelope(
        LEASE_CHECKPOINT_KIND,
        DISTRIBUTED_STATE_VERSION,
        {
            "block_lo": lease[0],
            "block_hi": lease[1],
            "blocks": blocks,
            "reducers": entry["reducers"].to_state(),
        },
    )
    return json.dumps(payload, separators=(",", ":")) + "\n"


def _build_plan(
    generator,
    when_value: float,
    size: int,
    entropy: str,
    spawn_key: "tuple[int, ...]",
    lease_blocks: int,
    chunk_size: int,
    factories: dict,
    manifest_name: str,
) -> dict:
    """The ``FleetDistributedPlan`` envelope pinning a run's parameters."""
    return make_envelope(
        DISTRIBUTED_PLAN_KIND,
        DISTRIBUTED_STATE_VERSION,
        {
            "version": MANIFEST_VERSION,
            "format": "csv",
            "size": size,
            "when": when_value,
            "entropy": entropy,
            "spawn_key": list(spawn_key),
            "block_size": RNG_BLOCK_SIZE,
            "lease_blocks": lease_blocks,
            "chunk_size": chunk_size,
            "reducers": sorted(factories),
            "reducer_args": _wire_reducer_args(factories),
            "generator": getattr(generator, "wire_name", "CorrelatedHostGenerator"),
            "generator_sha256": _generator_fingerprint(generator),
            "manifest_name": manifest_name,
        },
    )


def _load_lease_checkpoints(
    out_dir: str,
    leases: "list[tuple[int, int]]",
    factories: dict,
    size: int,
) -> "dict[tuple[int, int], dict]":
    """Completed-lease entries restored from the checkpoint log.

    Every checkpointed block file is re-verified against its recorded
    size and sha256 (:func:`_read_matching_block`); a lease whose files
    vanished or rotted is silently treated as incomplete and re-run.  A
    torn *final* line — the coordinator was killed mid-append — is
    discarded; malformed JSON anywhere earlier is corruption and raises
    :class:`StateError`, as do envelope/lease-grid/reducer mismatches.
    """
    path = os.path.join(out_dir, DISTRIBUTED_LEASE_LOG)
    completed: "dict[tuple[int, int], dict]" = {}
    if not os.path.exists(path):
        return completed
    expected = set(leases)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except ValueError:
            if number == len(lines):
                break  # torn tail from the crash; its lease is re-run
            raise StateError(
                f"lease checkpoint line {number} of {path} is not valid JSON"
            )
        require_state(payload, LEASE_CHECKPOINT_KIND, DISTRIBUTED_STATE_VERSION)
        lo = state_field(payload, LEASE_CHECKPOINT_KIND, "block_lo")
        hi = state_field(payload, LEASE_CHECKPOINT_KIND, "block_hi")
        lease = (lo, hi)
        if lease not in expected:
            raise StateError(
                f"lease checkpoint [{lo}, {hi}) does not match the plan's "
                "lease grid"
            )
        try:
            records, digests, _ = _decode_block_entries(
                state_field(payload, LEASE_CHECKPOINT_KIND, "blocks"),
                lease,
                size,
                inline=False,
            )
        except (ProtocolError, TypeError, ValueError, KeyError) as error:
            raise StateError(f"lease checkpoint [{lo}, {hi}) is malformed: {error}")
        if any(
            _read_matching_block(os.path.join(out_dir, record.path), record) is None
            for record in records
        ):
            continue  # block file missing or corrupt: regenerate the lease
        restored = ReducerSet.from_state(
            state_field(payload, LEASE_CHECKPOINT_KIND, "reducers")
        )
        if set(restored.names()) != set(factories):
            raise StateError(
                f"lease checkpoint [{lo}, {hi}) reducers "
                f"{sorted(restored.names())} do not match the plan's "
                f"{sorted(factories)}"
            )
        completed[lease] = {
            "records": records,
            "digests": digests,
            "reducers": restored,
            "writes": [],
        }
    return completed


# -- entry points ------------------------------------------------------------


def export_fleet_distributed(
    generator,
    when,
    size: int,
    rng,
    out_dir: str,
    workers: int = 2,
    connect: "list[tuple[str, int]] | tuple" = (),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    reducers: "dict | None" = None,
    quantiles: bool = False,
    lease_blocks: int = DEFAULT_LEASE_BLOCKS,
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    manifest_name: str = "manifest.json",
    start_method: "str | None" = None,
    fault_after: "int | None" = None,
    lease_depth: int = DEFAULT_LEASE_DEPTH,
    token: "str | None" = None,
    metrics_path: "str | None" = None,
    coordinator_fault_after: "int | None" = None,
) -> DistributedExportResult:
    """Export a fleet through coordinator-scheduled distributed workers.

    Spawns ``workers`` local worker processes and/or dials the
    ``connect`` list of ``(host, port)`` :func:`serve_worker` endpoints,
    leases them RNG-block ranges of ``lease_blocks`` blocks (at most
    ``lease_depth`` in flight per worker) with work-stealing and failure
    reassignment, and merges their serialized
    :class:`~repro.engine.reduce.ReducerSet` states in block order.  The
    resulting manifest (``layout="block"``, CSV only) and payload bytes
    are byte-identical to the single-process export of the same
    ``(parameters, when, size, seed)`` fleet; see the module docstring.

    ``token`` arms mutual shared-token auth; ``metrics_path`` writes the
    run's ``FleetDistributedMetrics`` JSON.  The run checkpoints every
    completed lease (see :func:`resume_fleet_distributed`).  ``reducers``
    accepts the :data:`WIRE_REDUCER_FACTORIES` subset by name (factories
    cannot travel a JSON wire); ``fault_after`` makes the first local
    worker SIGKILL itself after that many blocks and
    ``coordinator_fault_after`` SIGKILLs the coordinator itself after
    that many lease checkpoints (crash injection for tests/CI).  Raises
    :class:`RuntimeError` when every worker has died with leases
    outstanding.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if lease_blocks < 1:
        raise ValueError("lease_blocks must be at least 1")
    if lease_depth < 1:
        raise ValueError("lease_depth must be at least 1")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    connect = list(connect)
    if workers + len(connect) < 1:
        raise ValueError("need at least one worker (workers >= 1 or connect=...)")
    if worker_timeout <= 0:
        raise ValueError("worker_timeout must be positive")
    if coordinator_fault_after is not None and coordinator_fault_after < 1:
        raise ValueError("coordinator_fault_after must be at least 1")
    to_json = getattr(getattr(generator, "parameters", None), "to_json", None)
    if to_json is None:
        raise ValueError(
            "the distributed backend serialises the generator by its "
            "parameters; it needs generator.parameters.to_json()"
        )
    factories = _resolve_factories(reducers, quantiles)
    # Validate every factory's wire form up front (raises ValueError on a
    # factory that cannot travel as a registry name + JSON-safe arguments).
    _wire_reducer_args(factories)
    root = as_seed_sequence(rng)
    when_value = _when_as_float(when)
    out_dir = os.path.abspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    entropy = str(root.entropy)
    spawn_key = tuple(int(k) for k in root.spawn_key)
    leases = _lease_ranges(block_count(size), lease_blocks)
    plan = _build_plan(
        generator,
        when_value,
        size,
        entropy,
        spawn_key,
        lease_blocks,
        chunk_size,
        factories,
        manifest_name,
    )
    # A fresh run owns the directory: pin the plan, discard any stale
    # checkpoint log so old lease lines cannot splice into this export.
    _write_json_atomic(os.path.join(out_dir, DISTRIBUTED_PLAN_NAME), plan)
    _remove_quiet(os.path.join(out_dir, DISTRIBUTED_LEASE_LOG))
    return _run_distributed(
        generator=generator,
        when_value=when_value,
        size=size,
        entropy=entropy,
        spawn_key=spawn_key,
        out_dir=out_dir,
        factories=factories,
        chunk_size=chunk_size,
        lease_blocks=lease_blocks,
        leases=leases,
        completed={},
        resumed_leases=0,
        workers=workers,
        connect=connect,
        worker_timeout=worker_timeout,
        lease_depth=lease_depth,
        manifest_name=manifest_name,
        start_method=start_method,
        fault_after=fault_after,
        coordinator_fault_after=coordinator_fault_after,
        token=token,
        metrics_path=metrics_path,
    )


def resume_fleet_distributed(
    generator,
    out_dir: str,
    workers: int = 2,
    connect: "list[tuple[str, int]] | tuple" = (),
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    start_method: "str | None" = None,
    fault_after: "int | None" = None,
    lease_depth: int = DEFAULT_LEASE_DEPTH,
    token: "str | None" = None,
    metrics_path: "str | None" = None,
    coordinator_fault_after: "int | None" = None,
) -> DistributedExportResult:
    """Finish an interrupted distributed export byte-identically.

    Reads the run parameters from :data:`DISTRIBUTED_PLAN_NAME` (size,
    date, seed, lease grid and reducer set all come from the plan, not
    the caller), restores every lease recorded in
    :data:`DISTRIBUTED_LEASE_LOG` whose block files still verify, and
    re-leases only the incomplete ranges to a fresh worker fleet.  The
    finalised manifest, payload bytes and merged statistics are identical
    to an uninterrupted run.  Raises :class:`StateError` when there is
    nothing to resume or the plan/checkpoints are corrupt, mismatched
    with ``generator``, or wrong-versioned.
    """
    if workers < 0:
        raise ValueError("workers must be non-negative")
    connect = list(connect)
    if workers + len(connect) < 1:
        raise ValueError("need at least one worker (workers >= 1 or connect=...)")
    if worker_timeout <= 0:
        raise ValueError("worker_timeout must be positive")
    if lease_depth < 1:
        raise ValueError("lease_depth must be at least 1")
    out_dir = os.path.abspath(out_dir)
    plan_path = os.path.join(out_dir, DISTRIBUTED_PLAN_NAME)
    if not os.path.exists(plan_path):
        raise StateError(
            f"nothing to resume in {out_dir}: no {DISTRIBUTED_PLAN_NAME} "
            "(not a distributed export, or it already finalised)"
        )
    plan = _load_json(plan_path, "distributed plan")
    require_state(plan, DISTRIBUTED_PLAN_KIND, DISTRIBUTED_STATE_VERSION)

    def plan_int(name: str, minimum: int) -> int:
        value = state_field(plan, DISTRIBUTED_PLAN_KIND, name)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise StateError(
                f"distributed plan field {name!r} must be an integer >= "
                f"{minimum}, got {value!r}"
            )
        return value

    size = plan_int("size", 0)
    lease_blocks = plan_int("lease_blocks", 1)
    chunk_size = plan_int("chunk_size", 1)
    if plan_int("block_size", 1) != RNG_BLOCK_SIZE:
        raise StateError(
            f"distributed plan block size {plan['block_size']} does not match "
            f"this engine's {RNG_BLOCK_SIZE}"
        )
    if plan.get("version") != MANIFEST_VERSION:
        raise StateError(
            f"distributed plan manifest version {plan.get('version')!r} is "
            f"not the supported {MANIFEST_VERSION}"
        )
    if state_field(plan, DISTRIBUTED_PLAN_KIND, "format") != "csv":
        raise StateError(
            f"distributed plan format {plan['format']!r} is not csv"
        )
    fingerprint = _generator_fingerprint(generator)
    recorded = state_field(plan, DISTRIBUTED_PLAN_KIND, "generator_sha256")
    if fingerprint != recorded:
        raise StateError(
            "generator parameters do not match the interrupted export "
            f"(plan sha256 {recorded!r}, resuming generator {fingerprint!r})"
        )
    plan_generator = plan.get("generator", "CorrelatedHostGenerator")
    if not isinstance(plan_generator, str):
        raise StateError("distributed plan field 'generator' must be a string")
    resuming = getattr(generator, "wire_name", "CorrelatedHostGenerator")
    if resuming != plan_generator:
        raise StateError(
            f"distributed plan was built for generator {plan_generator!r}; "
            f"cannot resume it with {resuming!r}"
        )
    names = state_field(plan, DISTRIBUTED_PLAN_KIND, "reducers")
    if not isinstance(names, list) or not all(isinstance(n, str) for n in names):
        raise StateError("distributed plan field 'reducers' must be a name list")
    raw_args = plan.get("reducer_args", {})
    if not isinstance(raw_args, dict):
        raise StateError("distributed plan field 'reducer_args' must be an object")
    factories = {}
    for name in names:
        factory = WIRE_REDUCER_FACTORIES.get(name)
        if factory is None:
            raise StateError(f"distributed plan names unknown wire reducer {name!r}")
        try:
            factories[name] = _rebuild_wire_factory(factory, raw_args.get(name))
        except ValueError as error:
            raise StateError(f"distributed plan reducer {name!r} is malformed: {error}")
    entropy = state_field(plan, DISTRIBUTED_PLAN_KIND, "entropy")
    raw_spawn_key = state_field(plan, DISTRIBUTED_PLAN_KIND, "spawn_key")
    try:
        int(entropy)
        spawn_key = tuple(int(k) for k in raw_spawn_key)
        when_value = float(state_field(plan, DISTRIBUTED_PLAN_KIND, "when"))
    except (TypeError, ValueError) as error:
        raise StateError(f"distributed plan seed fields are malformed: {error}")
    manifest_name = state_field(plan, DISTRIBUTED_PLAN_KIND, "manifest_name")
    if not isinstance(manifest_name, str) or not manifest_name:
        raise StateError("distributed plan field 'manifest_name' is malformed")
    leases = _lease_ranges(block_count(size), lease_blocks)
    completed = _load_lease_checkpoints(out_dir, leases, factories, size)
    return _run_distributed(
        generator=generator,
        when_value=when_value,
        size=size,
        entropy=entropy,
        spawn_key=spawn_key,
        out_dir=out_dir,
        factories=factories,
        chunk_size=chunk_size,
        lease_blocks=lease_blocks,
        leases=leases,
        completed=completed,
        resumed_leases=len(completed),
        workers=workers,
        connect=connect,
        worker_timeout=worker_timeout,
        lease_depth=lease_depth,
        manifest_name=manifest_name,
        start_method=start_method,
        fault_after=fault_after,
        coordinator_fault_after=coordinator_fault_after,
        token=token,
        metrics_path=metrics_path,
    )


def _run_distributed(
    generator,
    when_value: float,
    size: int,
    entropy: str,
    spawn_key: "tuple[int, ...]",
    out_dir: str,
    factories: dict,
    chunk_size: int,
    lease_blocks: int,
    leases: "list[tuple[int, int]]",
    completed: "dict[tuple[int, int], dict]",
    resumed_leases: int,
    workers: int,
    connect: "list[tuple[str, int]]",
    worker_timeout: float,
    lease_depth: int,
    manifest_name: str,
    start_method: "str | None",
    fault_after: "int | None",
    coordinator_fault_after: "int | None",
    token: "str | None",
    metrics_path: "str | None",
) -> DistributedExportResult:
    """Shared core of fresh and resumed distributed exports: run the
    coordinator over the pending leases, then finalise manifest,
    statistics and metrics."""
    job = {
        "type": "job",
        "protocol": PROTOCOL_VERSION,
        "generator": getattr(generator, "wire_name", "CorrelatedHostGenerator"),
        "params": generator.parameters.to_json(),
        "when": when_value,
        "size": size,
        "entropy": entropy,
        "spawn_key": [int(k) for k in spawn_key],
        "block_size": RNG_BLOCK_SIZE,
        "format": "csv",
        "chunk_size": chunk_size,
        "reducers": sorted(factories),
        "reducer_args": _wire_reducer_args(factories),
        "worker_timeout": worker_timeout,
        "lease_depth": lease_depth,
    }
    if token is not None:
        job["token"] = token
    # Rewrite the log from the restored entries rather than appending: a
    # torn tail line from the crash would otherwise sit mid-file after
    # this run's first checkpoint, corrupting any *second* resume.
    checkpoint_log = open(
        os.path.join(out_dir, DISTRIBUTED_LEASE_LOG), "w", encoding="utf-8"
    )
    for lease in sorted(completed):
        checkpoint_log.write(_checkpoint_line(lease, completed[lease]))
    checkpoint_log.flush()
    coordinator = _Coordinator(
        job,
        leases,
        out_dir,
        factories,
        size,
        worker_timeout,
        fault_after,
        token=token,
        lease_depth=lease_depth,
        coordinator_fault_after=coordinator_fault_after,
        checkpoint_log=checkpoint_log,
        completed=completed,
    )

    start = time.perf_counter()
    listener = None
    try:
        if coordinator.pending:
            if workers:
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.bind(("127.0.0.1", 0))
                listener.listen(workers)
                port = listener.getsockname()[1]
                # Fork the worker processes *before* starting any
                # coordinator threads — forking a threaded process is the
                # deadlock _pool_context exists to avoid.  Healthy runs go
                # through the persistent pool (workers already warm after
                # the first fan-out); fault injection — of a worker *or*
                # of this coordinator — keeps raw processes, because a
                # process that SIGKILLs itself (or loses its parent to
                # SIGKILL) would poison a pool that outlives this call.
                if (
                    fault_after is None
                    and coordinator_fault_after is None
                    and not plan_is_active()
                    and persistence_enabled()
                ):
                    pool = get_pool(workers, start_method)
                    for _ in range(workers):
                        coordinator.processes.append(
                            _PooledWorkerHandle(
                                pool,
                                pool.apply_async(
                                    _local_worker_main, ("127.0.0.1", port, token)
                                ),
                            )
                        )
                else:
                    context = _pool_context(start_method)
                    for _ in range(workers):
                        process = context.Process(
                            target=_local_worker_main,
                            args=("127.0.0.1", port, token),
                            daemon=True,
                        )
                        process.start()
                        coordinator.processes.append(process)
                threading.Thread(
                    target=coordinator._accept_loop, args=(listener,), daemon=True
                ).start()
            for host, port in connect:
                sock = _dial(host, port, SITE_CONNECT_DIAL, timeout=worker_timeout)
                sock.settimeout(None)
                coordinator.attach(sock, f"tcp-{host}:{port}", local=False)
            coordinator.run()
    finally:
        checkpoint_log.close()
        if listener is not None:
            listener.close()
        for remote in coordinator.remotes:
            try:
                remote.sock.close()
            except OSError:
                pass
        for process in coordinator.processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
    elapsed = time.perf_counter() - start

    records: "list[SegmentRecord]" = []
    all_digests: "list[tuple[int, bytes]]" = []
    merged = ReducerSet.from_factories(factories)
    for lease in sorted(coordinator.completed):
        entry = coordinator.completed[lease]
        records.extend(entry["records"])
        all_digests.extend(entry["digests"])
        merged.merge(entry["reducers"])

    payload_hash = hashlib.sha256()
    for record in records:
        path = os.path.join(out_dir, record.path)
        file_hash = hashlib.sha256()
        _hash_file_into(path, file_hash, payload_hash)
        if file_hash.hexdigest() != record.sha256:
            raise RuntimeError(
                f"segment {record.path} on disk does not match the digest its "
                "worker reported; refusing to finalise a corrupt export"
            )

    manifest = FleetManifest(
        version=MANIFEST_VERSION,
        format="csv",
        size=size,
        when=when_value,
        entropy=entropy,
        spawn_key=spawn_key,
        shards=1,
        block_size=RNG_BLOCK_SIZE,
        header=generator_schema(generator).csv_header,
        payload_sha256=payload_hash.hexdigest(),
        fleet_sha256=combine_block_digests(all_digests),
        segments=tuple(records),
        layout="block",
        checkpoint_every=0,
    )
    manifest.save(os.path.join(out_dir, manifest_name))
    # The run is finalised: the plan and lease log are no longer needed
    # (and their absence is what marks the directory as complete).
    _remove_quiet(os.path.join(out_dir, DISTRIBUTED_PLAN_NAME))
    _remove_quiet(os.path.join(out_dir, DISTRIBUTED_LEASE_LOG))

    statistics = FleetStatistics(
        size=size,
        when=when_value,
        shards=max(1, coordinator.workers_seen),
        reducers=merged,
        elapsed_seconds=elapsed,
        digest=manifest.fleet_sha256,
    )
    metrics = make_envelope(
        DISTRIBUTED_METRICS_KIND,
        DISTRIBUTED_STATE_VERSION,
        {
            "elapsed_seconds": elapsed,
            "size": size,
            "lease_blocks": lease_blocks,
            "lease_depth": lease_depth,
            "leases_total": len(leases),
            "leases_run": len(coordinator.completed) - resumed_leases,
            "resumed_leases": resumed_leases,
            "workers_seen": coordinator.workers_seen,
            "requeued_leases": coordinator.requeued,
            "stolen_leases": coordinator.stolen,
            "drained_workers": coordinator.drained,
            "heartbeat_gap_bucket_seconds": list(HEARTBEAT_GAP_BUCKETS),
            "workers": coordinator.worker_metrics,
            "leases": sorted(
                coordinator.lease_events,
                key=lambda event: (event["block_lo"], event["block_hi"]),
            ),
        },
    )
    if metrics_path is not None:
        _write_json_atomic(os.path.abspath(metrics_path), metrics)
    return DistributedExportResult(
        manifest=manifest,
        statistics=statistics,
        workers=coordinator.workers_seen,
        reassigned_leases=coordinator.requeued + coordinator.stolen,
        metrics=metrics,
        resumed_leases=resumed_leases,
    )
