"""Distributed fleet export: a coordinator/worker reduction backend.

``generate_sharded`` and the writer fan work out to processes on one
machine; this module crosses the machine boundary.  A coordinator owns
the export: it partitions the RNG-block space into *leases*, hands them
to workers over a length-prefixed JSON protocol, and folds the results
back through the ``to_state()``/``from_state()`` serialization contract
(:mod:`repro.stats.state`) — exactly the payloads the checkpoint layer
persists to disk, now travelling a socket instead.

Topology
--------
Workers speak the same protocol whichever way the TCP connection was
established:

* ``export_fleet_distributed(..., workers=N)`` spawns N local worker
  processes (``multiprocessing``, honouring the engine's start-method
  override) that dial the coordinator's loopback listener and write
  their block segments straight into ``out_dir``.
* ``serve_worker(host, port)`` (CLI: ``fleet serve-worker``) listens for
  a coordinator; ``export_fleet_distributed(..., connect=[(host, port)])``
  dials it.  Attached workers ship segment bytes inline (base64) because
  they cannot assume a shared filesystem.

Protocol
--------
Frames are ``>I`` length-prefixed UTF-8 JSON objects capped at
:data:`MAX_FRAME_BYTES`; a connection that closes mid-header or mid-body
is a *torn frame* and raises :class:`ProtocolError`, as do oversized,
empty, non-JSON and non-object frames.  The worker speaks first::

    worker → hello {protocol}       coordinator → job {params, seed, ...}
    worker → ready                  coordinator → assign {block_lo, block_hi}
    worker → result {blocks, reducers}     ... repeat ...
    worker → heartbeat (background thread, any time)
                                    coordinator → shutdown

Failure semantics
-----------------
The coordinator tracks per-worker liveness (last frame seen).  A dropped
connection, a protocol violation, a reducer payload that fails
``ReducerSet.from_state`` (corrupt or version-mismatched state) or a
heartbeat gap beyond ``worker_timeout`` retires the worker and requeues
its outstanding lease.  When the lease queue drains while stragglers
still hold leases, idle workers steal the oldest outstanding lease
(speculative re-execution); the determinism contract makes duplicates
byte-identical, so the first result wins and later ones are discarded.
The run fails only when *no* workers remain.

Byte identity
-------------
Every block's bytes are a pure function of ``(parameters, when, size,
seed)``, so worker placement, crashes and steals cannot change the
export: the manifest is byte-identical to
``export_fleet_blocks(shards=1, checkpoint_every=0)`` and the CSV
concatenation (hence ``payload_sha256`` and ``fleet_sha256``) to the
single-process ``export_fleet`` of the same fleet.  Statistics merge
lease states in block order, so they are bit-identical across worker
counts and failure schedules too.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import signal
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from queue import Empty, Queue

import numpy as np

from repro.engine.accumulate import CorrelationAccumulator, MomentAccumulator
from repro.engine.pool import discard_pool, get_pool, persistence_enabled
from repro.engine.reduce import ChunkedFold, QuantileReducer, ReducerSet
from repro.engine.sharding import (
    FleetStatistics,
    _pool_context,
    _resolve_factories,
    _when_as_float,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    population_digest,
)
from repro.engine.csvfmt import encode_csv_rows
from repro.engine.writer import (
    HOST_CSV_FMT,
    HOST_CSV_HEADER,
    MANIFEST_VERSION,
    FleetManifest,
    SegmentRecord,
    _block_name,
    _hash_file_into,
)
from repro.stats.state import StateError

#: Wire protocol schema version; hello/job frames carry and check it.
PROTOCOL_VERSION = 1

#: Frame length prefix: 4-byte big-endian unsigned length.
_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON body.  A lease result with inline
#: segment data is ~200 KiB per block, so the default 8-block lease stays
#: three orders of magnitude under this; anything larger is a corrupt or
#: hostile length prefix, not a real message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Blocks per lease — the scheduling granule.  Smaller leases rebalance
#: stragglers faster; larger leases amortise protocol round trips.
DEFAULT_LEASE_BLOCKS = 4

#: Seconds of frame silence after which a worker is declared dead.
DEFAULT_WORKER_TIMEOUT = 60.0

#: Cadence of the worker-side background heartbeat thread.
HEARTBEAT_INTERVAL = 2.0

#: Age an outstanding lease must reach before an idle worker steals it.
STEAL_AFTER = 5.0

#: Reducers that may travel the wire by *name* (the job frame carries
#: names, never callables — workers instantiate from this registry, so a
#: coordinator cannot make a worker run arbitrary code).
WIRE_REDUCER_FACTORIES = {
    "moments": MomentAccumulator,
    "correlation": CorrelationAccumulator,
    "quantiles": QuantileReducer,
}


class ProtocolError(RuntimeError):
    """A frame violated the length-prefixed JSON wire protocol."""


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise one protocol message and write it to the socket."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send an oversized frame ({len(body)} bytes > "
            f"{MAX_FRAME_BYTES})"
        )
    sock.sendall(_FRAME_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> "dict | None":
    """Read one protocol message; ``None`` on a clean EOF between frames.

    A connection that closes *inside* a frame (torn header or body), a
    length prefix of zero or beyond :data:`MAX_FRAME_BYTES`, or a body
    that is not a JSON object all raise :class:`ProtocolError`.
    """
    header = _recv_exact(sock, _FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("empty frame (zero-length prefix)")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"oversized frame: length prefix {length} exceeds "
            f"{MAX_FRAME_BYTES} bytes"
        )
    body = _recv_exact(sock, length, allow_eof=False)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _recv_exact(sock: socket.socket, n: int, allow_eof: bool) -> "bytes | None":
    """Read exactly ``n`` bytes; torn reads raise, clean EOF may return None."""
    pieces: "list[bytes]" = []
    remaining = n
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError(
                f"torn frame: connection closed with {remaining} of {n} "
                "bytes outstanding"
            )
        pieces.append(piece)
        remaining -= len(piece)
    return b"".join(pieces)


def parse_endpoint(spec: str) -> "tuple[str, int]":
    """Parse a ``HOST:PORT`` worker endpoint, validating the port range."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker endpoint {spec!r} is not of the form HOST:PORT")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"worker endpoint {spec!r} has a non-integer port")
    if not 1 <= port <= 65535:
        raise ValueError(
            f"worker endpoint {spec!r} port must be in [1, 65535], got {port}"
        )
    return host, port


# -- worker ------------------------------------------------------------------


def _render_block_csv(block) -> bytes:
    """A block's CSV rows, byte-identical to every other export path."""
    return encode_csv_rows(block.to_matrix(), HOST_CSV_FMT)


def _heartbeat_loop(send, stop: threading.Event, interval: float) -> None:
    while not stop.wait(interval):
        try:
            send({"type": "heartbeat"})
        except OSError:
            return


def _worker_loop(sock: socket.socket) -> None:
    """Serve one coordinator over an established connection.

    Sends ``hello``, receives the job (generator parameters, seed,
    reducer names), then loops ``ready`` → ``assign`` → ``result`` until
    ``shutdown``.  A background thread heartbeats every
    :data:`HEARTBEAT_INTERVAL` seconds so slow block generation never
    reads as death.  Job problems (protocol/block-size/reducer-name
    mismatches) are reported with an ``error`` frame rather than silence.
    """
    # Imported lazily: the engine package must stay importable without
    # dragging the model layer in, and only workers rebuild generators.
    from repro.core.generator import CorrelatedHostGenerator
    from repro.core.parameters import ModelParameters

    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()

    def send(message: dict) -> None:
        with send_lock:
            send_frame(sock, message)

    # A connection that never sends the job (port scanner, half-open
    # leftover of a crashed coordinator) must not wedge this worker
    # forever: bound the handshake, then remove the limit — waiting for
    # an assign legitimately takes as long as the other leases do.
    sock.settimeout(DEFAULT_WORKER_TIMEOUT)
    send({"type": "hello", "protocol": PROTOCOL_VERSION, "pid": os.getpid()})
    job = recv_frame(sock)
    sock.settimeout(None)
    if job is None:
        return
    if job.get("type") != "job":
        raise ProtocolError(f"expected a job frame, got {job.get('type')!r}")

    def refuse(message: str) -> None:
        send({"type": "error", "message": message})

    if job.get("protocol") != PROTOCOL_VERSION:
        return refuse(
            f"coordinator speaks protocol {job.get('protocol')!r}; this "
            f"worker speaks {PROTOCOL_VERSION}"
        )
    if job.get("block_size") != RNG_BLOCK_SIZE:
        return refuse(
            f"coordinator fleet uses RNG block size {job.get('block_size')!r}; "
            f"this worker generates {RNG_BLOCK_SIZE} and would corrupt the export"
        )
    if job.get("format") != "csv":
        return refuse(f"unsupported segment format {job.get('format')!r}")
    factories = {}
    for name in job.get("reducers", []):
        factory = WIRE_REDUCER_FACTORIES.get(name)
        if factory is None:
            return refuse(
                f"unknown wire reducer {name!r}; this worker knows "
                f"{sorted(WIRE_REDUCER_FACTORIES)}"
            )
        factories[name] = factory
    try:
        generator = CorrelatedHostGenerator(ModelParameters.from_json(job["params"]))
        size = int(job["size"])
        when = float(job["when"])
        chunk_size = int(job["chunk_size"])
        root = np.random.SeedSequence(
            entropy=int(job["entropy"]),
            spawn_key=tuple(int(k) for k in job["spawn_key"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        return refuse(f"malformed job: {error}")
    seeds = block_seeds(root, size)
    out_dir = job.get("out_dir")
    fault_after = job.get("fault_after")

    stop = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop, args=(send, stop, HEARTBEAT_INTERVAL), daemon=True
    )
    heartbeat.start()
    written = 0
    try:
        while True:
            send({"type": "ready"})
            message = recv_frame(sock)
            if message is None or message.get("type") == "shutdown":
                return
            if message.get("type") != "assign":
                raise ProtocolError(
                    f"expected assign/shutdown, got {message.get('type')!r}"
                )
            lo, hi = int(message["block_lo"]), int(message["block_hi"])
            reducers = ReducerSet.from_factories(factories)
            fold = ChunkedFold(reducers, chunk_size)
            blocks: "list[dict]" = []
            for index in range(lo, hi):
                row_lo = index * RNG_BLOCK_SIZE
                block = generator.generate(
                    when,
                    min(RNG_BLOCK_SIZE, size - row_lo),
                    np.random.default_rng(seeds[index]),
                )
                data = _render_block_csv(block)
                entry = {
                    "index": index,
                    "sha256": hashlib.sha256(data).hexdigest(),
                    "bytes": len(data),
                    "digest": population_digest(block),
                }
                if out_dir:
                    with open(
                        os.path.join(out_dir, _block_name(index, "csv")), "wb"
                    ) as handle:
                        handle.write(data)
                else:
                    entry["data"] = base64.b64encode(data).decode("ascii")
                blocks.append(entry)
                fold.add(block)
                written += 1
                if fault_after is not None and written >= int(fault_after):
                    # Crash injection for the tests/CI: die the hard way,
                    # exactly like an OOM-killed or power-cycled worker.
                    os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
            fold.flush()
            send(
                {
                    "type": "result",
                    "block_lo": lo,
                    "block_hi": hi,
                    "blocks": blocks,
                    "reducers": reducers.to_state(),
                }
            )
    finally:
        stop.set()


def _local_worker_main(host: str, port: int) -> None:
    """Entry point of a spawned local worker process (module-level so it
    pickles under every multiprocessing start method)."""
    sock = socket.create_connection((host, port))
    try:
        _worker_loop(sock)
    except (ProtocolError, OSError):
        pass  # the coordinator tracks worker death through the socket
    finally:
        sock.close()


class _PooledWorkerHandle:
    """Process-shaped view of a local worker running inside the persistent
    pool, so the coordinator's liveness/teardown code needs no branches.

    ``is_alive`` maps to the task not having completed, ``join`` waits on
    the ``AsyncResult``, and ``terminate`` discards the whole pool — a
    single pool task cannot be killed, and a worker a caller wants dead is
    a worker the pool should not hand to the next fan-out anyway.
    """

    def __init__(self, pool, result):
        self._pool = pool
        self._result = result

    def is_alive(self) -> bool:
        return not self._result.ready()

    def join(self, timeout: "float | None" = None) -> None:
        try:
            self._result.get(timeout=timeout)
        except Exception:  # timeouts and worker errors surface elsewhere
            pass

    def terminate(self) -> None:
        discard_pool(self._pool)


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    max_jobs: "int | None" = 1,
    on_bound=None,
) -> int:
    """Listen for a coordinator and serve jobs (CLI: ``fleet serve-worker``).

    Serves ``max_jobs`` coordinator connections (``None`` = forever) and
    returns the number served.  ``on_bound`` (tests, supervisors) is
    called with the bound port once listening — useful with ``port=0``.
    A failed job (protocol violation, coordinator death) is logged to
    the exception's consumer and does not stop the next job.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    served = 0
    try:
        listener.bind((host, port))
        listener.listen(1)
        if on_bound is not None:
            on_bound(listener.getsockname()[1])
        while max_jobs is None or served < max_jobs:
            conn, _ = listener.accept()
            try:
                _worker_loop(conn)
            except (ProtocolError, StateError, OSError) as error:
                import sys

                sys.stderr.write(f"serve-worker: job failed: {error}\n")
            finally:
                conn.close()
            served += 1
    finally:
        listener.close()
    return served


# -- coordinator -------------------------------------------------------------


@dataclass
class DistributedExportResult:
    """Outcome of a distributed fleet export.

    ``workers`` counts connections that completed the handshake;
    ``reassigned_leases`` counts leases requeued after a worker died plus
    leases stolen from stragglers by idle workers.
    """

    manifest: FleetManifest
    statistics: FleetStatistics
    workers: int
    reassigned_leases: int


class _Remote:
    """Coordinator-side state of one worker connection."""

    def __init__(self, sock: socket.socket, name: str, local: bool):
        self.sock = sock
        self.name = name
        self.local = local
        self.state = "hello"
        self.lease: "tuple[int, int] | None" = None
        self.lease_started = 0.0
        self.last_seen = time.monotonic()
        self.idle = False
        self.alive = True


def _lease_ranges(n_blocks: int, lease_blocks: int) -> "list[tuple[int, int]]":
    return [
        (lo, min(lo + lease_blocks, n_blocks))
        for lo in range(0, n_blocks, lease_blocks)
    ]


class _Coordinator:
    """Single-threaded scheduler over reader-thread-fed worker events."""

    def __init__(
        self,
        job: dict,
        leases: "list[tuple[int, int]]",
        out_dir: str,
        factories: dict,
        size: int,
        worker_timeout: float,
        fault_after: "int | None",
    ):
        self.job = job
        self.leases = leases
        self.out_dir = out_dir
        self.factories = factories
        self.size = size
        self.worker_timeout = worker_timeout
        self.fault_after = fault_after
        self.fault_assigned = False
        self.events: Queue = Queue()
        self.remotes: "list[_Remote]" = []
        self.pending: "deque[tuple[int, int]]" = deque(leases)
        self.completed: "dict[tuple[int, int], dict]" = {}
        self.reassigned = 0
        self.workers_seen = 0
        self.last_error: "BaseException | None" = None
        self.processes: "list" = []

    # -- connection plumbing -------------------------------------------------

    def attach(self, sock: socket.socket, name: str, local: bool) -> None:
        """Register an established connection and start its reader thread."""
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        remote = _Remote(sock, name, local)
        self.remotes.append(remote)
        threading.Thread(
            target=self._reader, args=(remote,), daemon=True
        ).start()

    def _reader(self, remote: _Remote) -> None:
        try:
            while True:
                message = recv_frame(remote.sock)
                if message is None:
                    self.events.put(("close", remote, None))
                    return
                self.events.put(("frame", remote, message))
        except (ProtocolError, OSError) as error:
            self.events.put(("close", remote, error))

    def _accept_loop(self, listener: socket.socket) -> None:
        try:
            while True:
                sock, _ = listener.accept()
                self.events.put(("connect", sock))
        except OSError:
            return  # listener closed — coordinator shutting down

    # -- scheduling ----------------------------------------------------------

    def _send(self, remote: _Remote, message: dict) -> bool:
        try:
            send_frame(remote.sock, message)
            return True
        except OSError as error:
            self._drop(remote, error)
            return False

    def _drop(self, remote: _Remote, error: "BaseException | str | None") -> None:
        if not remote.alive:
            return
        remote.alive = False
        remote.idle = False
        if error is not None:
            self.last_error = (
                error if isinstance(error, BaseException) else RuntimeError(error)
            )
        try:
            remote.sock.close()
        except OSError:
            pass
        lease = remote.lease
        remote.lease = None
        if (
            lease is not None
            and lease not in self.completed
            and not any(r.alive and r.lease == lease for r in self.remotes)
        ):
            self.pending.appendleft(lease)
            self.reassigned += 1
            for other in self.remotes:
                if other.alive and other.idle:
                    self._offer(other)
                    break

    def _assign(self, remote: _Remote, lease: "tuple[int, int]") -> None:
        remote.idle = False
        remote.lease = lease
        remote.lease_started = time.monotonic()
        self._send(
            remote,
            {"type": "assign", "block_lo": lease[0], "block_hi": lease[1]},
        )

    def _offer(self, remote: _Remote) -> None:
        if self.pending:
            self._assign(remote, self.pending.popleft())
        else:
            remote.idle = True

    def _steal(self, now: float) -> None:
        """Give idle workers the oldest outstanding straggler leases.

        Each pass spreads the idle workers across *distinct* stragglers
        (oldest first) — duplicating one straggler's lease onto every
        idle worker would triplicate its blocks while the other
        stragglers got no help at all.
        """
        if self.pending:
            return
        taken: "set[tuple[int, int]]" = set()
        for remote in self.remotes:
            if not (remote.alive and remote.idle):
                continue
            candidates = [
                other
                for other in self.remotes
                if other.alive
                and other is not remote
                and other.lease is not None
                and other.lease not in self.completed
                and other.lease not in taken
                and now - other.lease_started > STEAL_AFTER
            ]
            if not candidates:
                return
            straggler = min(candidates, key=lambda other: other.lease_started)
            taken.add(straggler.lease)
            self.reassigned += 1
            self._assign(remote, straggler.lease)

    # -- frame handling ------------------------------------------------------

    def _handle_frame(self, remote: _Remote, message: dict) -> None:
        if not remote.alive:
            return
        remote.last_seen = time.monotonic()
        kind = message.get("type")
        if kind == "hello":
            if remote.state != "hello":
                return self._drop(remote, f"{remote.name} sent a second hello")
            if message.get("protocol") != PROTOCOL_VERSION:
                return self._drop(
                    remote,
                    f"{remote.name} speaks protocol "
                    f"{message.get('protocol')!r}, not {PROTOCOL_VERSION}",
                )
            remote.state = "active"
            self.workers_seen += 1
            job = dict(self.job)
            job["out_dir"] = self.out_dir if remote.local else None
            if self.fault_after is not None and remote.local and not self.fault_assigned:
                job["fault_after"] = self.fault_after
                self.fault_assigned = True
            self._send(remote, job)
        elif kind == "ready":
            if remote.state != "active":
                return self._drop(remote, f"{remote.name} sent ready before hello")
            self._offer(remote)
        elif kind == "heartbeat":
            pass
        elif kind == "result":
            self._handle_result(remote, message)
        elif kind == "error":
            self._drop(
                remote,
                f"worker {remote.name} refused the job: {message.get('message')}",
            )
        else:
            self._drop(remote, f"{remote.name} sent unknown frame type {kind!r}")

    def _handle_result(self, remote: _Remote, message: dict) -> None:
        lease = (message.get("block_lo"), message.get("block_hi"))
        if remote.lease != lease:
            return self._drop(
                remote, f"{remote.name} sent a result for a lease it does not hold"
            )
        if lease in self.completed:
            remote.lease = None
            return  # a speculative duplicate lost the race; first result won
        try:
            entry = self._validate_result(remote, lease, message)
        except (StateError, ProtocolError, ValueError, TypeError, KeyError) as error:
            # The lease is still attached to the remote here, so _drop
            # requeues it — clearing it first would leak the lease and
            # hang the export once the healthy workers drain the queue.
            return self._drop(
                remote, f"rejected result from {remote.name}: {error}"
            )
        remote.lease = None
        for index, data in entry.pop("writes"):
            with open(
                os.path.join(self.out_dir, _block_name(index, "csv")), "wb"
            ) as handle:
                handle.write(data)
        self.completed[lease] = entry

    def _validate_result(
        self, remote: _Remote, lease: "tuple[int, int]", message: dict
    ) -> dict:
        """Decode one lease result, mapping any malformed piece to an error.

        Returns the segment records, block digests, restored reducer set
        and (for inline transport) the decoded file bytes to write.  The
        reducer payload goes through :meth:`ReducerSet.from_state` here,
        so a corrupt or version-mismatched state is caught while we can
        still retire the worker and requeue its lease.
        """
        lo, hi = lease
        blocks = message.get("blocks")
        if not isinstance(blocks, list) or len(blocks) != hi - lo:
            raise ProtocolError(
                f"result must carry exactly {hi - lo} block entries"
            )
        records: "list[SegmentRecord]" = []
        digests: "list[tuple[int, bytes]]" = []
        writes: "list[tuple[int, bytes]]" = []
        for position, raw in enumerate(blocks):
            index = lo + position
            if not isinstance(raw, dict) or raw.get("index") != index:
                raise ProtocolError(f"block entry {position} is not block {index}")
            digest = bytes.fromhex(raw["digest"])
            sha = raw["sha256"]
            nbytes = raw["bytes"]
            if not isinstance(sha, str) or len(bytes.fromhex(sha)) != 32:
                raise ProtocolError(f"block {index} sha256 is malformed")
            if not isinstance(nbytes, int) or isinstance(nbytes, bool) or nbytes < 0:
                raise ProtocolError(f"block {index} byte count is malformed")
            if not remote.local:
                data = base64.b64decode(raw["data"], validate=True)
                if hashlib.sha256(data).hexdigest() != sha or len(data) != nbytes:
                    raise ProtocolError(
                        f"block {index} inline data does not match its digest"
                    )
                writes.append((index, data))
            records.append(
                SegmentRecord(
                    path=_block_name(index, "csv"),
                    shard=0,
                    block_lo=index,
                    block_hi=index + 1,
                    row_lo=min(index * RNG_BLOCK_SIZE, self.size),
                    row_hi=min((index + 1) * RNG_BLOCK_SIZE, self.size),
                    sha256=sha,
                    bytes=nbytes,
                )
            )
            digests.append((index, digest))
        restored = ReducerSet.from_state(message["reducers"])
        if set(restored.names()) != set(self.factories):
            raise StateError(
                f"result reducers {sorted(restored.names())} do not match the "
                f"job's {sorted(self.factories)}"
            )
        return {
            "records": records,
            "digests": digests,
            "reducers": restored,
            "writes": writes,
        }

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        start = time.monotonic()
        while len(self.completed) < len(self.leases):
            try:
                event = self.events.get(timeout=0.2)
            except Empty:
                event = None
            if event is not None:
                if event[0] == "connect":
                    self.attach(event[1], f"local-{len(self.remotes)}", local=True)
                elif event[0] == "frame":
                    self._handle_frame(event[1], event[2])
                elif event[0] == "close":
                    self._drop(event[1], event[2])
            now = time.monotonic()
            for remote in self.remotes:
                if remote.alive and now - remote.last_seen > self.worker_timeout:
                    self._drop(remote, f"{remote.name} heartbeat timeout")
            self._steal(now)
            if not any(remote.alive for remote in self.remotes):
                if any(process.is_alive() for process in self.processes):
                    if now - start > self.worker_timeout:
                        raise RuntimeError(
                            "distributed export stalled: no worker connected "
                            f"within {self.worker_timeout:.0f} s"
                        )
                    continue
                detail = f" (last error: {self.last_error})" if self.last_error else ""
                raise RuntimeError(
                    "all distributed workers died before completing the "
                    f"export{detail}"
                )
        for remote in self.remotes:
            if remote.alive:
                self._send(remote, {"type": "shutdown"})


def export_fleet_distributed(
    generator,
    when,
    size: int,
    rng,
    out_dir: str,
    workers: int = 2,
    connect: "list[tuple[str, int]] | tuple" = (),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    reducers: "dict | None" = None,
    quantiles: bool = False,
    lease_blocks: int = DEFAULT_LEASE_BLOCKS,
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    manifest_name: str = "manifest.json",
    start_method: "str | None" = None,
    fault_after: "int | None" = None,
) -> DistributedExportResult:
    """Export a fleet through coordinator-scheduled distributed workers.

    Spawns ``workers`` local worker processes and/or dials the
    ``connect`` list of ``(host, port)`` :func:`serve_worker` endpoints,
    leases them RNG-block ranges of ``lease_blocks`` blocks with
    work-stealing and failure reassignment, and merges their serialized
    :class:`~repro.engine.reduce.ReducerSet` states in block order.  The
    resulting manifest (``layout="block"``, CSV only) and payload bytes
    are byte-identical to the single-process export of the same
    ``(parameters, when, size, seed)`` fleet; see the module docstring.

    ``reducers`` accepts the :data:`WIRE_REDUCER_FACTORIES` subset by
    name (factories cannot travel a JSON wire); ``fault_after`` makes the
    first local worker SIGKILL itself after that many blocks (crash
    injection for tests/CI).  Raises :class:`RuntimeError` when every
    worker has died with leases outstanding.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if lease_blocks < 1:
        raise ValueError("lease_blocks must be at least 1")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    connect = list(connect)
    if workers + len(connect) < 1:
        raise ValueError("need at least one worker (workers >= 1 or connect=...)")
    if worker_timeout <= 0:
        raise ValueError("worker_timeout must be positive")
    to_json = getattr(getattr(generator, "parameters", None), "to_json", None)
    if to_json is None:
        raise ValueError(
            "the distributed backend serialises the generator by its "
            "parameters; it needs generator.parameters.to_json()"
        )
    factories = _resolve_factories(reducers, quantiles)
    for name, factory in factories.items():
        if WIRE_REDUCER_FACTORIES.get(name) is not factory:
            raise ValueError(
                f"reducer {name!r} cannot travel the wire; the distributed "
                f"backend ships names from {sorted(WIRE_REDUCER_FACTORIES)}"
            )
    root = as_seed_sequence(rng)
    when_value = _when_as_float(when)
    out_dir = os.path.abspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    n_blocks = block_count(size)
    leases = _lease_ranges(n_blocks, lease_blocks)

    job = {
        "type": "job",
        "protocol": PROTOCOL_VERSION,
        "generator": "CorrelatedHostGenerator",
        "params": to_json(),
        "when": when_value,
        "size": size,
        "entropy": str(root.entropy),
        "spawn_key": [int(k) for k in root.spawn_key],
        "block_size": RNG_BLOCK_SIZE,
        "format": "csv",
        "chunk_size": chunk_size,
        "reducers": sorted(factories),
    }
    coordinator = _Coordinator(
        job, leases, out_dir, factories, size, worker_timeout, fault_after
    )

    start = time.perf_counter()
    listener = None
    try:
        if leases:
            if workers:
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.bind(("127.0.0.1", 0))
                listener.listen(workers)
                port = listener.getsockname()[1]
                # Fork the worker processes *before* starting any
                # coordinator threads — forking a threaded process is the
                # deadlock _pool_context exists to avoid.  Healthy runs go
                # through the persistent pool (workers already warm after
                # the first fan-out); fault injection keeps raw processes,
                # because a worker that SIGKILLs itself would poison a
                # pool that outlives this call.
                if fault_after is None and persistence_enabled():
                    pool = get_pool(workers, start_method)
                    for _ in range(workers):
                        coordinator.processes.append(
                            _PooledWorkerHandle(
                                pool,
                                pool.apply_async(
                                    _local_worker_main, ("127.0.0.1", port)
                                ),
                            )
                        )
                else:
                    context = _pool_context(start_method)
                    for _ in range(workers):
                        process = context.Process(
                            target=_local_worker_main,
                            args=("127.0.0.1", port),
                            daemon=True,
                        )
                        process.start()
                        coordinator.processes.append(process)
                threading.Thread(
                    target=coordinator._accept_loop, args=(listener,), daemon=True
                ).start()
            for host, port in connect:
                sock = socket.create_connection((host, port), timeout=worker_timeout)
                sock.settimeout(None)
                coordinator.attach(sock, f"tcp-{host}:{port}", local=False)
            coordinator.run()
    finally:
        if listener is not None:
            listener.close()
        for remote in coordinator.remotes:
            try:
                remote.sock.close()
            except OSError:
                pass
        for process in coordinator.processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
    elapsed = time.perf_counter() - start

    records: "list[SegmentRecord]" = []
    all_digests: "list[tuple[int, bytes]]" = []
    merged = ReducerSet.from_factories(factories)
    for lease in sorted(coordinator.completed):
        entry = coordinator.completed[lease]
        records.extend(entry["records"])
        all_digests.extend(entry["digests"])
        merged.merge(entry["reducers"])

    payload_hash = hashlib.sha256()
    for record in records:
        path = os.path.join(out_dir, record.path)
        file_hash = hashlib.sha256()
        _hash_file_into(path, file_hash, payload_hash)
        if file_hash.hexdigest() != record.sha256:
            raise RuntimeError(
                f"segment {record.path} on disk does not match the digest its "
                "worker reported; refusing to finalise a corrupt export"
            )

    manifest = FleetManifest(
        version=MANIFEST_VERSION,
        format="csv",
        size=size,
        when=when_value,
        entropy=str(root.entropy),
        spawn_key=tuple(int(k) for k in root.spawn_key),
        shards=1,
        block_size=RNG_BLOCK_SIZE,
        header=HOST_CSV_HEADER,
        payload_sha256=payload_hash.hexdigest(),
        fleet_sha256=combine_block_digests(all_digests),
        segments=tuple(records),
        layout="block",
        checkpoint_every=0,
    )
    manifest.save(os.path.join(out_dir, manifest_name))

    statistics = FleetStatistics(
        size=size,
        when=when_value,
        shards=max(1, coordinator.workers_seen),
        reducers=merged,
        elapsed_seconds=elapsed,
        digest=manifest.fleet_sha256,
    )
    return DistributedExportResult(
        manifest=manifest,
        statistics=statistics,
        workers=coordinator.workers_seen,
        reassigned_leases=coordinator.reassigned,
    )
