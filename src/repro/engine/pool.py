"""Persistent worker pools and zero-copy block hand-off.

Every multiprocess fan-out in the engine used to spawn a fresh
``multiprocessing.Pool`` and tear it down with the call.  On small and
medium fleets that spawn cost *dominates*: the committed
``BENCH_engine_scale`` baseline shows sharded export stuck near
0.3 M hosts/s against 2.9 M hosts/s raw generation, and
``sharded_speedup`` < 1 on one vCPU, purely because every call pays
process startup again.  This module keeps the workers warm instead:

:func:`get_pool` / :func:`pool_map`
    A process-wide registry of persistent pools, one per resolved start
    method.  The first fan-out spawns the workers; every later
    ``generate_sharded`` / ``export_fleet`` / ``export_fleet_blocks`` /
    distributed-local-worker call in the same process reuses them, so a
    CLI command, a benchmark run or a service embedding pays spawn cost
    once per process, not once per call.  ``REPRO_POOL_PERSIST=0``
    restores the old spawn-per-call behaviour (the pool is still used,
    but torn down after each call).
:class:`BlockBuffer`
    Zero-copy ndarray hand-off over ``multiprocessing.shared_memory``:
    the parent allocates one buffer, workers attach by name and write
    their row ranges in place, and no column data is ever pickled
    through a result queue.  Platforms (or configurations,
    ``REPRO_BLOCK_HANDOFF=pickle``) without usable shared memory fall
    back to pickled ndarray returns transparently — the caller asks for
    a buffer, gets ``None``, and ships arrays the classic way.

Workers stay daemonic and are terminated at interpreter exit (the same
``terminate()`` the old ``with Pool():`` blocks issued), so persistence
changes when spawn cost is paid, never what runs or what is left behind.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time

import numpy as np

#: Set to ``0`` to disable cross-call pool persistence (each fan-out then
#: spawns and tears down its own pool, as the engine did before PR 7).
ENV_POOL_PERSIST = "REPRO_POOL_PERSIST"

#: Set to ``pickle`` to force the pickled-ndarray fallback path even where
#: shared memory is available (exercised by the test suite).
ENV_BLOCK_HANDOFF = "REPRO_BLOCK_HANDOFF"


def resolve_start_method(start_method: "str | None" = None) -> str:
    """The start method every engine fan-out resolves through.

    Resolution order: an explicit ``start_method`` argument, then the
    ``REPRO_START_METHOD`` environment variable, then fork where the
    platform offers it (cheap: no re-import, no pickling of the parent
    state) with spawn as the fallback.  The override exists because fork
    is unsafe under threaded callers (a forked child inherits locks held
    by threads that no longer exist and deadlocks) — such embedders pass
    ``"spawn"`` or export ``REPRO_START_METHOD=spawn``.  An unsupported
    name raises :class:`ValueError` in one line, naming the source of
    the bad value and the platform's choices.
    """
    methods = multiprocessing.get_all_start_methods()
    method = start_method
    source = "start_method"
    if method is None:
        method = os.environ.get("REPRO_START_METHOD") or None
        source = "REPRO_START_METHOD"
    if method is None:
        return "fork" if "fork" in methods else "spawn"
    if method not in methods:
        raise ValueError(
            f"unsupported multiprocessing start method {method!r} "
            f"(from {source}); this platform supports {', '.join(methods)}"
        )
    return method


class WorkerPool:
    """A ``multiprocessing.Pool`` that outlives a single fan-out call.

    Thin by design: the scheduling semantics are exactly
    ``Pool.map(chunksize=1)`` / ``Pool.apply_async``, plus the counters
    the benchmarks and tests read (``jobs_dispatched``, ``maps_run``).
    """

    def __init__(self, processes: int, start_method: "str | None" = None):
        if processes < 1:
            raise ValueError("processes must be at least 1")
        self.start_method = resolve_start_method(start_method)
        self.processes = processes
        self.jobs_dispatched = 0
        self.maps_run = 0
        context = multiprocessing.get_context(self.start_method)
        self._pool = context.Pool(processes=processes)

    def map(self, func, payloads: list) -> list:
        """Run ``func`` over ``payloads``, one payload per task."""
        self.jobs_dispatched += len(payloads)
        self.maps_run += 1
        return self._pool.map(func, payloads, chunksize=1)

    def apply_async(self, func, args: tuple = ()):
        """Submit one task; returns the ``AsyncResult``."""
        self.jobs_dispatched += 1
        return self._pool.apply_async(func, args)

    def close(self) -> None:
        """Terminate the workers (idempotent)."""
        self._pool.terminate()
        self._pool.join()


_LOCK = threading.Lock()
_POOLS: "dict[str, WorkerPool]" = {}
_SPAWN_COUNT = 0  # pools created since import; tests pin reuse through it
_ATEXIT_ARMED = False


def persistence_enabled() -> bool:
    """Whether pools persist across calls (``REPRO_POOL_PERSIST`` != 0)."""
    return os.environ.get(ENV_POOL_PERSIST, "1") != "0"


def get_pool(processes: int, start_method: "str | None" = None) -> WorkerPool:
    """The persistent pool for ``start_method``, grown to ``processes``.

    One pool lives per resolved start method.  A request for more
    processes than the pool holds replaces it with a larger one (the old
    workers are terminated first); a request for fewer reuses the larger
    pool — idle workers cost nothing, and the caller's payload list
    alone decides how much runs in parallel.
    """
    global _SPAWN_COUNT, _ATEXIT_ARMED
    method = resolve_start_method(start_method)
    with _LOCK:
        pool = _POOLS.get(method)
        if pool is None or pool.processes < processes:
            if pool is not None:
                pool.close()
            pool = WorkerPool(processes, method)
            _POOLS[method] = pool
            _SPAWN_COUNT += 1
            if not _ATEXIT_ARMED:
                atexit.register(shutdown_pools)
                _ATEXIT_ARMED = True
        return pool


def discard_pool(pool: WorkerPool) -> None:
    """Terminate ``pool`` and drop it from the registry if present.

    The recovery path for a pool a caller believes is wedged (e.g. a
    distributed local worker that never exited): the next fan-out simply
    spawns a fresh one.
    """
    with _LOCK:
        for method, registered in list(_POOLS.items()):
            if registered is pool:
                del _POOLS[method]
    pool.close()


def shutdown_pools() -> None:
    """Terminate every persistent pool (benchmarks measure cold starts
    by calling this between timings; also the atexit hook)."""
    with _LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.close()


def pool_stats() -> "dict[str, dict[str, int]]":
    """Per-start-method counters of the live persistent pools."""
    with _LOCK:
        return {
            method: {
                "processes": pool.processes,
                "jobs_dispatched": pool.jobs_dispatched,
                "maps_run": pool.maps_run,
            }
            for method, pool in _POOLS.items()
        }


def pools_spawned() -> int:
    """How many pools this process has created (reuse leaves it flat)."""
    return _SPAWN_COUNT


def _faulted_task_main(func, payload, index, queue):
    """Child entry of a fault-armed fan-out task (module-level so it
    pickles under fork and spawn alike): pass the ``pool.task``
    injection site, run the payload, ship back the result or the
    exception.  A SIGKILL'd child ships nothing — the parent notices the
    missing index and raises instead of hanging the way ``Pool.map``
    would on a dead worker."""
    from repro.faults.injector import fire
    from repro.faults.sites import SITE_POOL_TASK

    try:
        fire(SITE_POOL_TASK)
        queue.put((index, "ok", func(payload)))
    except BaseException as error:  # noqa: BLE001 - must cross the process
        queue.put((index, "error", error))


def _faulted_map(func, payloads: list, start_method: "str | None") -> list:
    """Fan-out used while a fault plan is live: raw processes + a result
    queue, so an injected SIGKILL/torn-write surfaces as a raised error
    (resumable) rather than a wedged ``Pool.map``."""
    import queue as _queue_mod

    context = multiprocessing.get_context(resolve_start_method(start_method))
    queue = context.Queue()
    processes = []
    for index, payload in enumerate(payloads):
        process = context.Process(
            target=_faulted_task_main,
            args=(func, payload, index, queue),
            daemon=True,
        )
        process.start()
        processes.append(process)
    results: "dict[int, tuple]" = {}

    def _drain(timeout: float) -> bool:
        try:
            index, status, value = queue.get(timeout=timeout)
        except _queue_mod.Empty:
            return False
        results[index] = (status, value)
        return True

    try:
        while len(results) < len(payloads):
            if _drain(0.2):
                continue
            dead = [
                index
                for index, process in enumerate(processes)
                if index not in results and process.exitcode is not None
            ]
            if not dead:
                continue
            # A result can still be in flight in the queue's feeder
            # thread for a moment after its process exits; give it a
            # short grace drain before declaring the worker dead.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and any(
                index not in results for index in dead
            ):
                _drain(0.2)
            for index in dead:
                if index not in results:
                    raise RuntimeError(
                        f"fan-out worker for payload {index} died with exit "
                        f"code {processes[index].exitcode} before returning "
                        "a result (injected fault?)"
                    )
    finally:
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
    ordered = []
    for index in range(len(payloads)):
        status, value = results[index]
        if status == "error":
            raise value
        ordered.append(value)
    return ordered


def pool_map(
    func, payloads: list, processes: int, start_method: "str | None" = None
) -> list:
    """Fan ``payloads`` out over the persistent pool (the engine's one
    fan-out entry point).

    With persistence disabled the pool is created for this call and torn
    down after it — byte-for-byte the engine's old behaviour.  A payload
    that *raises* propagates after every task finished, exactly like
    ``Pool.map``; the pool stays healthy and keeps its workers either
    way (a raised task is a normal result, not a dead process).

    A live fault plan (see :mod:`repro.faults`) bypasses pools entirely
    for :func:`_faulted_map`'s raw processes: persistent workers may
    have been forked *before* the plan was armed and would silently not
    fire, a SIGKILL'd worker must not poison a pool that outlives this
    call — and ``Pool.map`` would simply hang on a worker that dies.
    """
    if not payloads:
        return []
    from repro.faults.injector import plan_is_active

    processes = min(processes, len(payloads))
    if plan_is_active():
        return _faulted_map(func, payloads, start_method)
    if not persistence_enabled():
        pool = WorkerPool(processes, start_method)
        try:
            return pool.map(func, payloads)
        finally:
            pool.close()
    return get_pool(processes, start_method).map(func, payloads)


# -- zero-copy block hand-off ------------------------------------------------


class BlockBuffer:
    """A shared-memory ndarray both sides of a pool boundary can address.

    The parent calls :func:`create_block_buffer`; workers receive the
    small picklable :meth:`handle` ``(path, shape, dtype)`` tuple in
    their payload, :meth:`attach`, and write rows in place — the column
    data itself never crosses a pickle boundary.  The creating side owns
    the segment and must :meth:`unlink` it (``close`` alone detaches).

    Backing store: a ``MAP_SHARED`` :class:`numpy.memmap` over an
    unlinked-on-close file in ``/dev/shm`` (plain POSIX shared memory —
    the same tmpfs ``shm_open`` uses) with the system temp directory as
    the fallback.  This sidesteps ``multiprocessing.shared_memory``'s
    resource tracker, whose attach-side registration misfires for
    persistent fork pools (the workers share the parent's tracker, and
    close/unregister races print spurious leak reports at exit).
    """

    def __init__(self, path: str, shape, dtype, owner: bool):
        self.path = path
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        self._owner = owner
        self.array = np.memmap(path, dtype=self.dtype, mode="r+", shape=self.shape)

    @classmethod
    def create(cls, shape, dtype=np.float64) -> "BlockBuffer":
        import tempfile

        directory = "/dev/shm" if os.path.isdir("/dev/shm") else None
        fd, path = tempfile.mkstemp(prefix="repro-block-", dir=directory)
        try:
            nbytes = (
                int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            )
            os.ftruncate(fd, max(1, nbytes))
        finally:
            os.close(fd)
        try:
            return cls(path, shape, dtype, owner=True)
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            raise

    @classmethod
    def attach(cls, handle: "tuple[str, tuple, str]") -> "BlockBuffer":
        path, shape, dtype = handle
        return cls(path, shape, dtype, owner=False)

    def handle(self) -> "tuple[str, tuple, str]":
        """The picklable ``(path, shape, dtype)`` attach token."""
        return (self.path, self.shape, self.dtype.str)

    def close(self) -> None:
        """Detach this mapping (workers call this; the data survives —
        writes are visible to every attached process through the shared
        page cache, no flush needed)."""
        array, self.array = self.array, None
        if array is None:
            return
        mapping = getattr(array, "_mmap", None)
        del array
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:  # a live view still references the pages
                pass

    def unlink(self) -> None:
        """Detach and remove the segment (owner side, exactly once)."""
        self.close()
        if self._owner:
            try:
                os.remove(self.path)
            except OSError:  # already gone (e.g. double unlink)
                pass


def create_block_buffer(shape, dtype=np.float64) -> "BlockBuffer | None":
    """A :class:`BlockBuffer`, or ``None`` where the pickling fallback
    must be used instead.

    ``None`` (rather than an exception) is the fallback signal so call
    sites read as one branch: platforms without a writable shared-memory
    mount, a full ``/dev/shm``, and the explicit
    ``REPRO_BLOCK_HANDOFF=pickle`` override all land here, and the
    workers ship their arrays pickled as before.
    """
    if os.environ.get(ENV_BLOCK_HANDOFF) == "pickle":
        return None
    try:
        return BlockBuffer.create(shape, dtype)
    except (OSError, ValueError):
        return None
