"""Multiprocess sharded fleet generation with reducer-set reduction.

``generate_sharded`` fans the RNG blocks of a fleet out to N worker
processes; each worker generates its blocks, folds them into a
:class:`~repro.engine.reduce.ReducerSet` built from pluggable factories,
and the parent merges the shard sets.  Because blocks — not shards — own
the random streams (see :mod:`~repro.engine.streaming`), the fleet (and
its digest) is identical for every shard count, and peak memory per worker
is bounded by ``chunk_size`` hosts rather than the fleet size.
"""

from __future__ import annotations

import datetime as _dt
import multiprocessing
import time
from dataclasses import dataclass

import numpy as np

from repro.engine.accumulate import CorrelationAccumulator, MomentAccumulator
from repro.engine.pool import pool_map, resolve_start_method
from repro.engine.reduce import (
    ChunkedFold,
    QuantileReducer,
    ReducerFactory,
    ReducerSet,
)
from repro.engine.streaming import (
    DEFAULT_CHUNK_SIZE,
    RNG_BLOCK_SIZE,
    as_seed_sequence,
    block_count,
    block_seeds,
    combine_block_digests,
    population_digest,
)

#: The reducers every fleet run carries unless a custom set is plugged in.
DEFAULT_REDUCER_FACTORIES: "dict[str, ReducerFactory]" = {
    "moments": MomentAccumulator,
    "correlation": CorrelationAccumulator,
}


@dataclass
class FleetStatistics:
    """Reduced one-pass statistics of a generated fleet."""

    size: int
    when: float
    shards: int
    reducers: ReducerSet
    elapsed_seconds: float
    digest: "str | None" = None

    @property
    def moments(self) -> "MomentAccumulator | None":
        """The moment reducer, when the run carried one."""
        return self.reducers.get("moments")

    @property
    def correlation(self) -> "CorrelationAccumulator | None":
        """The correlation reducer, when the run carried one."""
        return self.reducers.get("correlation")

    @property
    def quantiles(self) -> "QuantileReducer | None":
        """The quantile-sketch reducer, when the run carried one."""
        return self.reducers.get("quantiles")

    @property
    def hosts_per_second(self) -> float:
        """Generation + reduction throughput."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.size / self.elapsed_seconds

    def medians(self) -> "dict[str, float]":
        """Sketch medians (requires the ``quantiles`` reducer)."""
        quantiles = self.quantiles
        if quantiles is None:
            raise ValueError(
                "this run carried no quantile reducer; pass quantiles=True "
                "to generate_sharded"
            )
        return quantiles.medians()

    def summary_table(self) -> str:
        """Aligned mean[/median]/std table of the five primary resources."""
        if self.moments is None:
            raise ValueError(
                "this run carried no moment reducer; include 'moments' in the "
                "reducer set passed to generate_sharded to render a summary"
            )
        medians = self.quantiles.medians() if self.quantiles is not None else None
        return self.moments.summary_table(medians=medians)


def _resolve_factories(
    reducers: "dict[str, ReducerFactory] | None", quantiles: bool
) -> "dict[str, ReducerFactory]":
    factories = dict(DEFAULT_REDUCER_FACTORIES if reducers is None else reducers)
    if quantiles and "quantiles" not in factories:
        factories["quantiles"] = QuantileReducer
    return factories


def _shard_payloads(
    generator, when, size, root, shards, chunk_size, want_digest, factories
) -> "list[tuple]":
    return [
        (generator, when, size, root, shard, shards, chunk_size, want_digest, factories)
        for shard in range(shards)
    ]


def _run_shard(payload: tuple):
    """Generate every block with ``index % shards == shard`` and reduce.

    Module-level so it pickles under both fork and spawn start methods
    (which is also why reducer *factories*, not instances, travel in the
    payload).  Blocks are buffered up to ``chunk_size`` hosts between
    reducer updates — larger chunks mean fewer, more vectorised updates at
    the cost of a proportionally larger working set.
    """
    (
        generator,
        when,
        size,
        root,
        shard,
        shards,
        chunk_size,
        want_digest,
        factories,
    ) = payload
    reducers = ReducerSet.from_factories(factories)
    digests: "list[tuple[int, bytes]]" = []
    fold = ChunkedFold(reducers, chunk_size)

    seeds = block_seeds(root, size)
    for index in range(shard, len(seeds), shards):
        lo = index * RNG_BLOCK_SIZE
        block = generator.generate(
            when, min(RNG_BLOCK_SIZE, size - lo), np.random.default_rng(seeds[index])
        )
        if want_digest:
            digests.append((index, bytes.fromhex(population_digest(block))))
        fold.add(block)
    fold.flush()
    return shard, reducers, digests


def _pool_context(
    start_method: "str | None" = None,
) -> multiprocessing.context.BaseContext:
    """The multiprocessing context every engine fan-out spawns through.

    Start-method resolution (explicit argument, then
    ``REPRO_START_METHOD``, then fork-with-spawn-fallback) lives in
    :func:`repro.engine.pool.resolve_start_method`; an unsupported name
    raises :class:`ValueError` naming the source of the bad value and
    the platform's choices.  Since PR 7 the fan-outs themselves go
    through the persistent pools of :mod:`repro.engine.pool` — this
    context is what the pools (and the distributed backend's raw worker
    processes) spawn from.
    """
    return multiprocessing.get_context(resolve_start_method(start_method))


def generate_sharded(
    generator,
    when: "_dt.date | float",
    size: int,
    rng: "int | np.random.SeedSequence | np.random.Generator | None",
    shards: int = 4,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    digest: bool = False,
    reducers: "dict[str, ReducerFactory] | None" = None,
    quantiles: bool = False,
    start_method: "str | None" = None,
) -> FleetStatistics:
    """Generate a fleet across ``shards`` worker processes and reduce.

    The fleet content follows the streaming determinism contract, so the
    optional ``digest`` is identical for every ``shards`` value; the
    moment/correlation reducers agree across shard counts and with the
    batch :class:`~repro.hosts.population.HostPopulation` statistics to
    float merge precision (well under ``1e-6`` on correlation entries).

    ``reducers`` plugs in a custom ``{name: factory}`` set (factories must
    be picklable zero-argument callables — classes or ``functools.partial``);
    the default set carries moments + correlation.  ``quantiles=True`` adds
    a :class:`~repro.engine.reduce.QuantileReducer` under the name
    ``"quantiles"`` for streamed medians/deciles.

    ``shards=1`` runs in-process (no pool), which is also the single-process
    baseline the scale benchmark compares against.  ``start_method``
    overrides the worker-pool start method (see :func:`_pool_context`;
    threaded callers should pass ``"spawn"`` or set
    ``REPRO_START_METHOD``).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if size < 0:
        raise ValueError("size must be non-negative")
    root = as_seed_sequence(rng)
    shards = min(shards, max(1, block_count(size)))
    factories = _resolve_factories(reducers, quantiles)
    payloads = _shard_payloads(
        generator, when, size, root, shards, chunk_size, digest, factories
    )

    start = time.perf_counter()
    if shards == 1:
        results = [_run_shard(payloads[0])]
    else:
        # The persistent pool (repro.engine.pool) amortises process spawn
        # across calls: only the first fan-out in a process pays startup.
        results = pool_map(_run_shard, payloads, shards, start_method)
    elapsed = time.perf_counter() - start

    results.sort(key=lambda item: item[0])
    merged = ReducerSet.from_factories(factories)
    all_digests: "list[tuple[int, bytes]]" = []
    for _, shard_reducers, shard_digests in results:
        merged.merge(shard_reducers)
        all_digests.extend(shard_digests)

    return FleetStatistics(
        size=size,
        when=_when_as_float(when),
        shards=shards,
        reducers=merged,
        elapsed_seconds=elapsed,
        digest=combine_block_digests(all_digests) if digest else None,
    )


def _when_as_float(when: "_dt.date | float") -> float:
    """Calendar-year float of ``when`` for the result record."""
    if isinstance(when, _dt.date):
        from repro.timeutil import year_fraction

        return float(year_fraction(when))
    return float(when)
