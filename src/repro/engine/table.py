"""Column schemas and generic column blocks for non-host scenarios.

The engine's streaming/sharding/export/distributed layers were written
against one table shape — the five-resource
:class:`~repro.hosts.population.HostPopulation`.  Scenario generators
(availability churn, lifetime cohorts, allocation utilities, bandwidth)
emit *other* column sets, so the table shape itself becomes a value:

:class:`TableSchema`
    A frozen record of ``(labels, csv_fmt, csv_header)`` — everything the
    writer and the distributed wire need to render and verify a block.
:class:`ColumnBlock`
    A generic labelled block of equal-length float columns satisfying the
    population protocol the engine already duck-types against:
    ``__len__``, ``column``/``__getitem__``, ``to_matrix``, ``slice`` and
    ``classmethod concatenate``.  The dict-style access (``__iter__``,
    ``__contains__``, ``keys``) lets reducers' :class:`ColumnCache` treat a
    block as a mapping without copies.

Generators advertise their schema via a ``schema`` attribute; blocks carry
the same attribute.  :func:`generator_schema` / :func:`block_schema`
default to :data:`HOST_SCHEMA` so every existing host-resource path is
untouched — the engine never needs to know whether it is moving hosts or
scenario rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hosts.population import RESOURCE_LABELS

#: CSV header line for host exports (canonical home; re-exported by the
#: writer for backward compatibility).
HOST_CSV_HEADER = "cores,memory_mb,dhrystone_mips,whetstone_mips,disk_gb\n"

#: Row format matching :data:`HOST_CSV_HEADER` (one ``%`` spec per column).
HOST_CSV_FMT = "%d,%.1f,%.1f,%.1f,%.2f"


def _format_spec_count(fmt: str) -> int:
    """Number of ``%`` conversion specs in a printf-style row format."""
    return fmt.replace("%%", "").count("%")


@dataclass(frozen=True)
class TableSchema:
    """The column contract of one table family.

    ``labels`` orders the columns, ``csv_fmt`` renders one row and
    ``csv_header`` is written verbatim at the top of each CSV segment.
    Header tokens may differ from labels (the host header spells
    ``dhrystone_mips`` for the label ``dhrystone``) — only the column
    *count* must agree.
    """

    labels: "tuple[str, ...]"
    csv_fmt: str
    csv_header: str

    def __post_init__(self) -> None:
        labels = tuple(self.labels)
        object.__setattr__(self, "labels", labels)
        if not labels:
            raise ValueError("schema labels must be non-empty")
        if len(set(labels)) != len(labels):
            raise ValueError(f"schema labels must be unique, got {labels}")
        if not all(isinstance(label, str) and label for label in labels):
            raise ValueError(f"schema labels must be non-empty strings: {labels}")
        if _format_spec_count(self.csv_fmt) != len(labels):
            raise ValueError(
                f"csv_fmt {self.csv_fmt!r} renders "
                f"{_format_spec_count(self.csv_fmt)} columns; schema has "
                f"{len(labels)}"
            )
        if not self.csv_header.endswith("\n"):
            raise ValueError("csv_header must end with a newline")
        header_columns = self.csv_header.strip("\n").split(",")
        if len(header_columns) != len(labels):
            raise ValueError(
                f"csv_header names {len(header_columns)} columns; schema "
                f"has {len(labels)}"
            )

    @property
    def width(self) -> int:
        """Number of columns."""
        return len(self.labels)


#: The host-resource schema every pre-scenario export used implicitly.
HOST_SCHEMA = TableSchema(RESOURCE_LABELS, HOST_CSV_FMT, HOST_CSV_HEADER)


class ColumnBlock:
    """A labelled block of equal-length float columns under a schema.

    The generic population: reducers index it like a mapping, the writer
    renders it via :meth:`to_matrix` + the schema's ``csv_fmt``, and the
    streaming layer re-chunks it with :meth:`slice` /
    :meth:`concatenate` — the same protocol surface as
    :class:`~repro.hosts.population.HostPopulation`.
    """

    __slots__ = ("schema", "_columns")

    def __init__(self, columns: "dict[str, np.ndarray]", schema: TableSchema):
        if set(columns) != set(schema.labels):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema labels "
                f"{sorted(schema.labels)}"
            )
        arrays: "dict[str, np.ndarray]" = {}
        length: "int | None" = None
        for label in schema.labels:
            values = np.asarray(columns[label], dtype=float)
            if values.ndim != 1:
                raise ValueError(f"column {label!r} must be 1-D")
            if length is None:
                length = values.shape[0]
            elif values.shape[0] != length:
                raise ValueError(
                    f"column {label!r} has {values.shape[0]} rows; "
                    f"expected {length}"
                )
            arrays[label] = values
        self.schema = schema
        self._columns = arrays

    def __len__(self) -> int:
        return self._columns[self.schema.labels[0]].shape[0]

    def column(self, label: str) -> np.ndarray:
        """One column by label (the population accessor)."""
        return self._columns[label]

    def __getitem__(self, label: str) -> np.ndarray:
        return self._columns[label]

    def __contains__(self, label: str) -> bool:
        return label in self._columns

    def __iter__(self):
        return iter(self.schema.labels)

    def keys(self) -> "tuple[str, ...]":
        return self.schema.labels

    def to_matrix(self) -> np.ndarray:
        """Rows as a C-contiguous float64 ``(n, width)`` matrix.

        Column order is the schema's label order, so the matrix bytes (and
        everything hashed from them) identify the block content exactly.
        """
        return np.ascontiguousarray(
            np.column_stack([self._columns[label] for label in self.schema.labels])
        )

    def slice(self, lo: int, hi: int) -> "ColumnBlock":
        """Row range ``[lo, hi)`` as numpy views (no copy)."""
        return ColumnBlock(
            {label: self._columns[label][lo:hi] for label in self.schema.labels},
            self.schema,
        )

    @classmethod
    def concatenate(cls, blocks: "list[ColumnBlock]") -> "ColumnBlock":
        """Concatenate same-schema blocks in order."""
        if not blocks:
            raise ValueError("cannot concatenate an empty list of blocks")
        schema = blocks[0].schema
        for block in blocks[1:]:
            if block.schema != schema:
                raise ValueError("cannot concatenate blocks of different schemas")
        return cls(
            {
                label: np.concatenate([block._columns[label] for block in blocks])
                for label in schema.labels
            },
            schema,
        )


def generator_schema(generator) -> TableSchema:
    """The table schema a generator emits (host schema unless it says)."""
    return getattr(generator, "schema", HOST_SCHEMA)


def block_schema(block) -> TableSchema:
    """The table schema of one emitted block (host schema unless it says)."""
    return getattr(block, "schema", HOST_SCHEMA)
