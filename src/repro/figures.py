"""Figure-data export: every figure's series as plain CSV files.

The benches assert shapes and print paper-vs-measured numbers; this module
writes the underlying *series* to disk so they can be plotted with any tool
(the repository deliberately has no plotting dependency).  Used by
``resmodel figures``.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.analysis.composition import (
    cpu_shares_table,
    gpu_memory_distribution,
    gpu_type_shares,
    os_shares_table,
)
from repro.analysis.overview import (
    creation_lifetime_trend,
    lifetime_distribution,
    resource_overview,
)
from repro.analysis.resources import (
    core_ratio_series,
    multicore_fractions,
    percore_fraction_bands,
)
from repro.core.parameters import ModelParameters
from repro.core.prediction import predict_core_fractions, predict_memory_fractions
from repro.traces.dataset import TraceDataset


def _write_csv(path: Path, header: list[str], rows) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_figure_data(
    trace: TraceDataset,
    out_dir: "str | Path",
    parameters: "ModelParameters | None" = None,
) -> list[Path]:
    """Write one CSV per figure into ``out_dir``; returns the paths written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    params = parameters if parameters is not None else ModelParameters.paper_reference()
    written: list[Path] = []

    # Fig 1 — lifetime PDF/CDF.
    lifetimes = lifetime_distribution(trace)
    path = out / "fig01_lifetimes.csv"
    _write_csv(
        path,
        ["days", "pdf_density", "cdf"],
        zip(
            lifetimes.pdf_days,
            lifetimes.pdf_density,
            lifetimes.cdf(lifetimes.pdf_days),
        ),
    )
    written.append(path)

    # Fig 2 — overview series.
    overview = resource_overview(trace)
    path = out / "fig02_overview.csv"
    labels = list(overview.means)
    rows = []
    for i, date in enumerate(overview.dates):
        row = [date, overview.active_counts[i]]
        for label in labels:
            row.extend([overview.means[label][i], overview.stds[label][i]])
        rows.append(row)
    header = ["date", "active_hosts"]
    for label in labels:
        header.extend([f"{label}_mean", f"{label}_std"])
    _write_csv(path, header, rows)
    written.append(path)

    # Fig 3 — creation vs lifetime.
    centres, means = creation_lifetime_trend(trace)
    path = out / "fig03_creation_lifetime.csv"
    _write_csv(path, ["cohort_centre", "mean_lifetime_days"], zip(centres, means))
    written.append(path)

    # Tables I/II — composition.
    for name, table in (
        ("tab01_processors.csv", cpu_shares_table(trace)),
        ("tab02_os.csv", os_shares_table(trace)),
    ):
        path = out / name
        years = [2006, 2007, 2008, 2009, 2010]
        _write_csv(
            path,
            ["label", *[str(y) for y in years]],
            ([label, *row] for label, row in table.items()),
        )
        written.append(path)

    # Figs 4/5 — multicore bands and core ratios.
    dates = np.linspace(2006.05, 2010.5, 19)
    bands = multicore_fractions(trace, dates)
    path = out / "fig04_multicore_bands.csv"
    _write_csv(
        path,
        ["date", *bands.keys()],
        zip(dates, *(bands[label] for label in bands)),
    )
    written.append(path)

    ratios = core_ratio_series(trace, dates)
    path = out / "fig05_core_ratios.csv"
    _write_csv(
        path,
        ["date", *ratios.keys()],
        zip(dates, *(ratios[label] for label in ratios)),
    )
    written.append(path)

    # Fig 7 — per-core memory bands.
    percore = percore_fraction_bands(trace, dates)
    path = out / "fig07_percore_bands.csv"
    _write_csv(
        path,
        ["date", *percore.keys()],
        zip(dates, *(percore[label] for label in percore)),
    )
    written.append(path)

    # Table VII / Fig 10 — GPUs.
    gpu_types = gpu_type_shares(trace)
    path = out / "tab07_gpu_types.csv"
    _write_csv(
        path,
        ["label", "sep2009_pct", "sep2010_pct"],
        ([label, *row] for label, row in gpu_types.items()),
    )
    written.append(path)

    path = out / "fig10_gpu_memory.csv"
    dist09 = gpu_memory_distribution(trace, 2009.667)
    dist10 = gpu_memory_distribution(trace, 2010.667)
    _write_csv(
        path,
        ["memory_mb", "fraction_sep2009", "fraction_sep2010"],
        zip(dist09.classes_mb, dist09.fractions, dist10.fractions),
    )
    written.append(path)

    # Figs 13/14 — forecasts (from the model, not the trace).
    years = np.arange(2009.0, 2014.01, 0.25)
    cores_forecast = predict_core_fractions(params, years)
    path = out / "fig13_core_forecast.csv"
    _write_csv(
        path,
        ["year", *cores_forecast.keys()],
        zip(years, *(cores_forecast[label] for label in cores_forecast)),
    )
    written.append(path)

    memory_forecast = predict_memory_fractions(params, years)
    path = out / "fig14_memory_forecast.csv"
    _write_csv(
        path,
        ["year", *memory_forecast.keys()],
        zip(years, *(memory_forecast[label] for label in memory_forecast)),
    )
    written.append(path)

    return written
