"""Platform catalogues: CPU families, operating systems and GPUs.

The paper reports the yearly composition of processor families (Table I),
operating systems (Table II) and GPU types/memory (Table VII, Fig 10).
These compositions are not part of the generative resource model — the
authors explicitly exclude processor identity because future models cannot
be predicted — but they drive the synthetic trace's metadata so the
composition analyses have realistic input.

Shares are stored exactly as published (percent of total per calendar
year); :func:`composition_at` interpolates piecewise-linearly between the
yearly columns and renormalises, clamping outside the observed range.
"""

from __future__ import annotations

import numpy as np

#: Processor family labels, in Table I row order.
CPU_FAMILIES: tuple[str, ...] = (
    "PowerPC G3/G4/G5",
    "Athlon XP",
    "Athlon 64",
    "Other AMD",
    "Pentium 4",
    "Pentium M",
    "Pentium D",
    "Other Pentium",
    "Intel Core 2",
    "Intel Celeron",
    "Intel Xeon",
    "Other x86",
    "Other",
)

#: Table I — processor family shares (% of total) per calendar year.
CPU_SHARES_BY_YEAR: dict[int, tuple[float, ...]] = {
    2006: (5.1, 12.3, 6.5, 8.3, 36.8, 5.4, 0.7, 4.1, 0.9, 5.6, 2.1, 9.9, 2.3),
    2007: (6.5, 9.0, 9.5, 8.2, 33.0, 5.5, 3.0, 2.6, 3.3, 6.4, 2.8, 7.7, 2.6),
    2008: (4.7, 6.2, 11.4, 7.8, 27.2, 4.3, 4.2, 2.1, 13.2, 6.3, 3.3, 7.6, 1.6),
    2009: (3.5, 4.0, 11.6, 7.9, 20.7, 3.1, 3.9, 3.3, 24.8, 5.9, 3.9, 6.1, 1.3),
    2010: (2.7, 2.5, 10.2, 9.5, 15.5, 2.1, 3.1, 5.2, 32.0, 4.9, 4.3, 5.1, 2.9),
}

#: Operating-system labels, in Table II row order.
OS_NAMES: tuple[str, ...] = (
    "Windows XP",
    "Windows Vista",
    "Windows 7",
    "Windows 2000",
    "Other Windows",
    "Mac OS X",
    "Linux",
    "Other",
)

#: Table II — OS shares (% of total) per calendar year.
OS_SHARES_BY_YEAR: dict[int, tuple[float, ...]] = {
    2006: (69.8, 0.0, 0.0, 12.9, 6.3, 5.4, 5.1, 0.4),
    2007: (71.5, 0.0, 0.0, 8.5, 6.1, 7.8, 5.7, 0.4),
    2008: (68.6, 6.7, 0.0, 5.5, 4.8, 7.9, 6.0, 0.4),
    2009: (62.5, 14.0, 0.0, 3.4, 4.8, 8.5, 6.4, 0.3),
    2010: (52.9, 15.9, 9.2, 2.0, 3.4, 9.0, 7.3, 0.3),
}

#: GPU family labels, in Table VII row order.
GPU_TYPES: tuple[str, ...] = ("GeForce", "Radeon", "Quadro", "Other")

#: Table VII — GPU type shares among GPU-equipped hosts (% of GPU hosts).
GPU_SHARES_BY_DATE: dict[float, tuple[float, ...]] = {
    2009.667: (82.5, 12.2, 4.7, 0.6),  # September 2009
    2010.667: (63.6, 31.5, 4.0, 0.8),  # September 2010
}

#: Fraction of active hosts reporting a GPU at the two anchor dates (§V-A).
GPU_HOST_FRACTION_BY_DATE: dict[float, float] = {2009.667: 0.127, 2010.667: 0.238}

#: Date at which BOINC started recording GPU statistics (September 2009).
GPU_RECORDING_START: float = 2009.667

#: Discrete GPU memory sizes (MB) used by the Fig 10 distribution.
GPU_MEMORY_CLASSES_MB: tuple[int, ...] = (128, 256, 512, 768, 1024, 1536, 2048)

#: GPU memory PMFs at the Fig 10 anchors, calibrated to the published
#: moments (mean 592.7 → 659.4 MB, median 512 MB, P(>=1GB) 19 % → 31 %,
#: P(>1GB) below ~2 %).
GPU_MEMORY_PMF_BY_DATE: dict[float, tuple[float, ...]] = {
    2009.667: (0.05, 0.23, 0.40, 0.13, 0.175, 0.010, 0.005),
    2010.667: (0.035, 0.175, 0.375, 0.115, 0.280, 0.012, 0.008),
}


def composition_at(
    shares_by_time: "dict[int, tuple[float, ...]] | dict[float, tuple[float, ...]]",
    when: float,
) -> np.ndarray:
    """Interpolated, renormalised share vector (fractions) at time ``when``.

    ``when`` is a calendar-year float.  Between tabulated columns the shares
    are interpolated linearly; outside the tabulated range the nearest
    column is used (technology shares are not extrapolated).
    """
    times = sorted(shares_by_time)
    if not times:
        raise ValueError("no composition columns given")
    table = np.array([shares_by_time[t] for t in times], dtype=float)
    t_arr = np.array(times, dtype=float)

    if when <= t_arr[0]:
        shares = table[0]
    elif when >= t_arr[-1]:
        shares = table[-1]
    else:
        hi = int(np.searchsorted(t_arr, when, side="right"))
        lo = hi - 1
        span = t_arr[hi] - t_arr[lo]
        frac = (when - t_arr[lo]) / span
        shares = (1 - frac) * table[lo] + frac * table[hi]

    total = shares.sum()
    if total <= 0:
        raise ValueError("composition column sums to zero")
    return shares / total


def gpu_fraction_at(when: float) -> float:
    """Fraction of active hosts reporting a GPU at ``when`` (calendar year).

    Zero before recording started (September 2009); linear between the two
    anchors; held at the 2010 level afterwards (no published data beyond).
    """
    if when < GPU_RECORDING_START:
        return 0.0
    t0, t1 = sorted(GPU_HOST_FRACTION_BY_DATE)
    f0, f1 = GPU_HOST_FRACTION_BY_DATE[t0], GPU_HOST_FRACTION_BY_DATE[t1]
    if when >= t1:
        return f1
    return f0 + (f1 - f0) * (when - t0) / (t1 - t0)


def sample_labels(
    labels: tuple[str, ...],
    probabilities: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` labels according to ``probabilities``."""
    if len(labels) != probabilities.size:
        raise ValueError("label/probability length mismatch")
    idx = rng.choice(len(labels), size=size, p=probabilities)
    return np.asarray(labels, dtype=object)[idx]


#: CPU families that imply Mac OS X (used by the synthetic trace's
#: platform-affinity logic).
MAC_CPU_FAMILIES: frozenset[str] = frozenset({"PowerPC G3/G4/G5"})

#: CPU families that were predominantly multicore-era parts; the synthetic
#: trace biases these towards hosts with more cores.
MULTICORE_CPU_FAMILIES: frozenset[str] = frozenset(
    {"Intel Core 2", "Intel Xeon", "Pentium D", "Athlon 64"}
)

#: CPU families that are strictly single-core-era parts.
SINGLECORE_CPU_FAMILIES: frozenset[str] = frozenset(
    {"Athlon XP", "Pentium M", "Pentium 4", "Intel Celeron"}
)
