"""The per-host resource record (Section V-A).

A host carries the five key resources the paper models — core count, total
memory, Dhrystone/Whetstone speed and available disk — plus the optional
platform metadata (CPU family, OS, GPU) used by the composition analyses
(Tables I, II, VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Host:
    """One Internet end host's resources.

    The five required fields are the paper's modelled resources; the optional
    metadata fields mirror what the BOINC server records about platforms.
    """

    #: Number of primary processing cores (GPU cores excluded).
    cores: int
    #: Volatile memory in MB.
    memory_mb: float
    #: Integer speed per core, Dhrystone 2.1 MIPS.
    dhrystone_mips: float
    #: Floating-point speed per core, Whetstone MIPS.
    whetstone_mips: float
    #: Available (not total) non-volatile storage in GB.
    disk_gb: float

    #: Processor family label (Table I rows), if known.
    cpu_family: "str | None" = None
    #: Operating-system label (Table II rows), if known.
    os_name: "str | None" = None
    #: Whether the host reports a GPU coprocessor.
    has_gpu: bool = False
    #: GPU family label (Table VII rows), if a GPU is present.
    gpu_type: "str | None" = None
    #: GPU memory in MB, if a GPU is present.
    gpu_memory_mb: "float | None" = None
    #: Creation time as a fractional calendar year, if known.
    created: "float | None" = field(default=None, compare=False)
    #: Observed lifetime in days, if known.
    lifetime_days: "float | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"a host needs at least one core, got {self.cores}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory must be positive, got {self.memory_mb}")
        if self.dhrystone_mips <= 0 or self.whetstone_mips <= 0:
            raise ValueError("benchmark speeds must be positive")
        if self.disk_gb < 0:
            raise ValueError(f"available disk cannot be negative, got {self.disk_gb}")
        if self.has_gpu and self.gpu_memory_mb is not None and self.gpu_memory_mb <= 0:
            raise ValueError("GPU memory, when present, must be positive")

    @property
    def memory_per_core_mb(self) -> float:
        """Memory per core in MB — the paper's decorrelated memory quantity."""
        return self.memory_mb / self.cores

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"{self.cores} core(s)",
            f"{self.memory_mb:.0f} MB RAM",
            f"{self.dhrystone_mips:.0f} Dhrystone MIPS",
            f"{self.whetstone_mips:.0f} Whetstone MIPS",
            f"{self.disk_gb:.1f} GB free disk",
        ]
        if self.cpu_family:
            parts.append(self.cpu_family)
        if self.os_name:
            parts.append(self.os_name)
        if self.has_gpu:
            gpu = self.gpu_type or "GPU"
            if self.gpu_memory_mb:
                gpu += f" ({self.gpu_memory_mb:.0f} MB)"
            parts.append(gpu)
        return ", ".join(parts)
