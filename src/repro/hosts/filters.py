"""Data-sanity filtering (Section V-B).

The paper discards hosts reporting more than 128 cores, 10^5 Whetstone MIPS,
10^5 Dhrystone MIPS, 10^2 GB memory or 10^4 GB available disk — values
attributable to storage/transmission errors or tampered clients — which
removed 3361 hosts (0.12 % of the total).  :class:`SanityFilter` implements
those rules plus basic positivity checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hosts.population import HostPopulation


@dataclass(frozen=True)
class SanityFilter:
    """Bounds on believable host measurements (paper defaults)."""

    max_cores: float = 128.0
    max_whetstone_mips: float = 1e5
    max_dhrystone_mips: float = 1e5
    max_memory_mb: float = 100.0 * 1024  # 10^2 GB
    max_disk_gb: float = 1e4

    def keep_mask(
        self,
        cores: np.ndarray,
        memory_mb: np.ndarray,
        dhrystone: np.ndarray,
        whetstone: np.ndarray,
        disk_gb: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask of hosts passing every sanity rule."""
        cores = np.asarray(cores, dtype=float)
        memory_mb = np.asarray(memory_mb, dtype=float)
        dhrystone = np.asarray(dhrystone, dtype=float)
        whetstone = np.asarray(whetstone, dtype=float)
        disk_gb = np.asarray(disk_gb, dtype=float)
        keep = (
            (cores >= 1)
            & (cores <= self.max_cores)
            & (memory_mb > 0)
            & (memory_mb <= self.max_memory_mb)
            & (dhrystone > 0)
            & (dhrystone <= self.max_dhrystone_mips)
            & (whetstone > 0)
            & (whetstone <= self.max_whetstone_mips)
            & (disk_gb >= 0)
            & (disk_gb <= self.max_disk_gb)
        )
        return keep

    def apply(self, population: HostPopulation) -> tuple[HostPopulation, int]:
        """Filter a population; returns ``(clean_population, n_discarded)``."""
        keep = self.keep_mask(
            population.cores,
            population.memory_mb,
            population.dhrystone,
            population.whetstone,
            population.disk_gb,
        )
        return population.subset(keep), int((~keep).sum())

    def discard_fraction(self, population: HostPopulation) -> float:
        """Fraction of hosts the filter would discard."""
        keep = self.keep_mask(
            population.cores,
            population.memory_mb,
            population.dhrystone,
            population.whetstone,
            population.disk_gb,
        )
        if keep.size == 0:
            return 0.0
        return float((~keep).mean())
