"""Numpy-backed host populations.

Analyses in the paper operate on hundreds of thousands of hosts at a time,
so the library keeps populations as column arrays rather than lists of
objects.  :class:`HostPopulation` provides the aggregate operations the
paper's figures need — means, standard deviations, correlation matrices of
the six resource quantities (including the derived memory-per-core column of
Table III) — plus conversion to/from :class:`~repro.hosts.host.Host` records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hosts.host import Host
from repro.stats.correlation import CorrelationMatrix, pearson_matrix

#: Canonical resource column order used across the library.
RESOURCE_LABELS: tuple[str, ...] = (
    "cores",
    "memory_mb",
    "dhrystone",
    "whetstone",
    "disk_gb",
)

#: Table III's six quantities: the five resources plus memory-per-core.
CORRELATION_LABELS: tuple[str, ...] = (
    "cores",
    "memory_mb",
    "mem_per_core",
    "whetstone",
    "dhrystone",
    "disk_gb",
)


@dataclass(frozen=True)
class HostPopulation:
    """A set of hosts stored as parallel resource columns."""

    cores: np.ndarray
    memory_mb: np.ndarray
    dhrystone: np.ndarray
    whetstone: np.ndarray
    disk_gb: np.ndarray

    def __post_init__(self) -> None:
        columns = {
            "cores": np.asarray(self.cores, dtype=float),
            "memory_mb": np.asarray(self.memory_mb, dtype=float),
            "dhrystone": np.asarray(self.dhrystone, dtype=float),
            "whetstone": np.asarray(self.whetstone, dtype=float),
            "disk_gb": np.asarray(self.disk_gb, dtype=float),
        }
        size = columns["cores"].size
        for name, column in columns.items():
            if column.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if column.size != size:
                raise ValueError(
                    f"column {name!r} has {column.size} rows; expected {size}"
                )
            object.__setattr__(self, name, column)

    def __len__(self) -> int:
        return int(self.cores.size)

    @classmethod
    def from_hosts(cls, hosts: "list[Host]") -> "HostPopulation":
        """Build a population from a list of host records."""
        return cls(
            cores=np.array([h.cores for h in hosts], dtype=float),
            memory_mb=np.array([h.memory_mb for h in hosts], dtype=float),
            dhrystone=np.array([h.dhrystone_mips for h in hosts], dtype=float),
            whetstone=np.array([h.whetstone_mips for h in hosts], dtype=float),
            disk_gb=np.array([h.disk_gb for h in hosts], dtype=float),
        )

    def to_hosts(self) -> "list[Host]":
        """Materialise the population as host records (use sparingly)."""
        return [
            Host(
                cores=int(round(c)),
                memory_mb=float(m),
                dhrystone_mips=float(d),
                whetstone_mips=float(w),
                disk_gb=float(g),
            )
            for c, m, d, w, g in zip(
                self.cores, self.memory_mb, self.dhrystone, self.whetstone, self.disk_gb
            )
        ]

    def to_matrix(self) -> np.ndarray:
        """Rows as a contiguous ``(n, 5)`` float64 array.

        Columns follow :data:`RESOURCE_LABELS`; this is the canonical
        row-major layout shared by CSV export and fleet hashing.
        """
        return np.ascontiguousarray(
            np.column_stack(
                [self.column(label) for label in RESOURCE_LABELS]
            ),
            dtype=np.float64,
        )

    @property
    def mem_per_core(self) -> np.ndarray:
        """Derived memory-per-core column (MB).

        Hosts with zero cores (possible in naive baseline pools) yield
        ``inf``; correlation code treats the resulting non-finite entries
        as "no measurable association".
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.memory_mb / self.cores

    def column(self, label: str) -> np.ndarray:
        """Fetch a column by its canonical label (including derived ones)."""
        if label == "mem_per_core":
            return self.mem_per_core
        if label not in RESOURCE_LABELS:
            raise KeyError(f"unknown resource {label!r}; have {RESOURCE_LABELS}")
        return getattr(self, label)

    def columns(self) -> dict[str, np.ndarray]:
        """All six Table III columns keyed by label."""
        return {label: self.column(label) for label in CORRELATION_LABELS}

    def _moments(self):
        """The population folded through the shared moment reducer.

        Imported lazily: :mod:`repro.engine` depends on this module at
        import time, so the batch population reaches the reducer layer at
        call time instead.  The reducer is cached on the instance —
        columns are immutable by convention, and the common
        ``means()`` + ``stds()`` call pair must not pay two full passes.
        """
        cached = self.__dict__.get("_moments_cache")
        if cached is None:
            from repro.engine.accumulate import MomentAccumulator

            cached = MomentAccumulator(RESOURCE_LABELS).update(self)
            object.__setattr__(self, "_moments_cache", cached)
        return cached

    def means(self) -> dict[str, float]:
        """Mean of each of the five primary resources (via the moment reducer)."""
        return self._moments().means()

    def stds(self) -> dict[str, float]:
        """Standard deviation of each primary resource (via the moment reducer)."""
        return self._moments().stds()

    def medians(self) -> dict[str, float]:
        """Median of each primary resource (via the exact quantile reducer)."""
        from repro.engine.reduce import ExactQuantileReducer

        return ExactQuantileReducer(RESOURCE_LABELS).update(self).medians()

    def correlation_matrix(self) -> CorrelationMatrix:
        """Table III-style 6×6 Pearson matrix (resources + mem/core)."""
        if len(self) < 2:
            raise ValueError("need at least two hosts for a correlation matrix")
        return pearson_matrix(self.columns())

    def subset(self, mask: np.ndarray) -> "HostPopulation":
        """Population restricted to the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(f"mask shape {mask.shape} does not match {len(self)} hosts")
        return HostPopulation(
            cores=self.cores[mask],
            memory_mb=self.memory_mb[mask],
            dhrystone=self.dhrystone[mask],
            whetstone=self.whetstone[mask],
            disk_gb=self.disk_gb[mask],
        )

    def sample(
        self,
        size: int,
        rng: np.random.Generator,
        replace: "bool | None" = None,
    ) -> "HostPopulation":
        """Random subsample of ``size`` hosts.

        ``replace=None`` (default) samples without replacement when
        ``size <= len(self)`` and falls back to sampling with replacement
        otherwise.  Pass ``replace=True`` or ``replace=False`` to force a
        mode; ``replace=False`` with ``size > len(self)`` is impossible and
        raises :class:`ValueError`.
        """
        if replace is None:
            replace = size > len(self)
        elif not replace and size > len(self):
            raise ValueError(
                f"cannot sample {size} hosts from {len(self)} without replacement"
            )
        idx = rng.choice(len(self), size=size, replace=replace)
        mask_cols = {
            "cores": self.cores[idx],
            "memory_mb": self.memory_mb[idx],
            "dhrystone": self.dhrystone[idx],
            "whetstone": self.whetstone[idx],
            "disk_gb": self.disk_gb[idx],
        }
        return HostPopulation(**mask_cols)

    @classmethod
    def concatenate(cls, populations: "list[HostPopulation]") -> "HostPopulation":
        """Stack several populations into one."""
        if not populations:
            raise ValueError("nothing to concatenate")
        return cls(
            cores=np.concatenate([p.cores for p in populations]),
            memory_mb=np.concatenate([p.memory_mb for p in populations]),
            dhrystone=np.concatenate([p.dhrystone for p in populations]),
            whetstone=np.concatenate([p.whetstone for p in populations]),
            disk_gb=np.concatenate([p.disk_gb for p in populations]),
        )

    def summary_table(self) -> str:
        """Aligned text table of mean/median/std per resource."""
        moments = self._moments()  # one reducer pass for means and stds
        means, medians, stds = moments.means(), self.medians(), moments.stds()
        lines = [f"{'resource':>12} {'mean':>12} {'median':>12} {'std':>12}"]
        for label in RESOURCE_LABELS:
            lines.append(
                f"{label:>12} {means[label]:>12.2f} "
                f"{medians[label]:>12.2f} {stds[label]:>12.2f}"
            )
        return "\n".join(lines)
