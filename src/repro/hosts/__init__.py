"""Host records, populations, sanity filtering and platform catalogues."""

from repro.hosts.filters import SanityFilter
from repro.hosts.host import Host
from repro.hosts.population import HostPopulation, RESOURCE_LABELS

from repro.hosts import platforms

__all__ = ["Host", "HostPopulation", "RESOURCE_LABELS", "SanityFilter", "platforms"]
