"""Fitting the paper's exponential trend law ``value(t) = a * exp(b * t)``.

Every time-dependent quantity in the paper — core-count ratios, per-core
memory ratios, benchmark means and variances, disk-space moments — is
modelled with this two-parameter law (Tables IV, V, VI, X).  Fitting is done
in log space, where the law is linear, via ordinary least squares.  The
quality measure ``r`` reported alongside ``a`` and ``b`` is the Pearson
correlation coefficient between ``log(value)`` and ``t``, matching the ``r``
columns of the paper's tables (negative for decaying ratios).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ExponentialLawFit:
    """Result of fitting ``a * exp(b t)`` to a series of positive values."""

    a: float
    b: float
    #: Pearson correlation of (t, log value); sign follows the trend's slope.
    r: float

    def value(self, t: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate the fitted law at epoch-relative time ``t``."""
        return self.a * np.exp(self.b * np.asarray(t, dtype=float))


def fit_exponential_law(
    t: "np.ndarray | list[float]",
    values: "np.ndarray | list[float]",
) -> ExponentialLawFit:
    """Fit ``values ~ a * exp(b * t)`` by least squares on ``log(values)``.

    Parameters
    ----------
    t:
        Sample times (epoch-relative years).  At least two distinct times
        are required.
    values:
        Strictly positive observations, one per entry of ``t``.

    Returns
    -------
    ExponentialLawFit
        The fitted ``a``, ``b`` and the log-space Pearson ``r``.

    Raises
    ------
    ValueError
        If fewer than two points are given, the lengths disagree, any value
        is non-positive, or all times coincide.
    """
    t_arr = np.asarray(t, dtype=float)
    v_arr = np.asarray(values, dtype=float)
    if t_arr.ndim != 1 or v_arr.ndim != 1:
        raise ValueError("t and values must be one-dimensional")
    if t_arr.size != v_arr.size:
        raise ValueError(
            f"length mismatch: {t_arr.size} times vs {v_arr.size} values"
        )
    if t_arr.size < 2:
        raise ValueError("need at least two points to fit an exponential law")
    if np.any(v_arr <= 0):
        raise ValueError("exponential law requires strictly positive values")
    if np.ptp(t_arr) == 0:
        raise ValueError("all sample times coincide; slope is undefined")

    log_v = np.log(v_arr)
    b, log_a = np.polyfit(t_arr, log_v, 1)

    if np.allclose(log_v, log_v[0]):
        # A perfectly flat series is a valid (b == 0) law; correlation with
        # time is undefined, so report 0 rather than dividing by zero.
        r = 0.0
    else:
        r = float(np.corrcoef(t_arr, log_v)[0, 1])
    return ExponentialLawFit(a=float(np.exp(log_a)), b=float(b), r=r)
