"""Moment conversions for the model's parametric families.

The paper's Table VI/X parameterises the disk-space distribution by its
*linear-space* mean and variance while sampling from a log-normal; the
conversions live here.  Weibull helpers back the lifetime model of Fig 1
(k = 0.58, λ = 135 days ⇒ mean 192–213 days, median ≈ 71 days).
"""

from __future__ import annotations

import math


def lognormal_params_from_moments(mean: float, variance: float) -> tuple[float, float]:
    """Convert a linear-space (mean, variance) to log-normal ``(mu, sigma)``.

    ``X ~ LogNormal(mu, sigma)`` has ``E[X] = exp(mu + sigma^2/2)`` and
    ``Var[X] = (exp(sigma^2) - 1) exp(2 mu + sigma^2)``; this inverts those
    relations.

    Raises
    ------
    ValueError
        If ``mean`` is not positive or ``variance`` is negative.
    """
    if mean <= 0:
        raise ValueError(f"log-normal mean must be positive, got {mean}")
    if variance < 0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    sigma_sq = math.log1p(variance / (mean * mean))
    mu = math.log(mean) - sigma_sq / 2
    return mu, math.sqrt(sigma_sq)


def lognormal_moments_from_params(mu: float, sigma: float) -> tuple[float, float]:
    """Convert log-normal ``(mu, sigma)`` back to linear (mean, variance)."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    mean = math.exp(mu + sigma * sigma / 2)
    variance = math.expm1(sigma * sigma) * math.exp(2 * mu + sigma * sigma)
    return mean, variance


def weibull_mean(shape: float, scale: float) -> float:
    """Mean of a Weibull(shape ``k``, scale ``λ``): ``λ Γ(1 + 1/k)``."""
    if shape <= 0 or scale <= 0:
        raise ValueError("Weibull shape and scale must be positive")
    return scale * math.gamma(1 + 1 / shape)


def weibull_median(shape: float, scale: float) -> float:
    """Median of a Weibull(k, λ): ``λ (ln 2)^(1/k)``."""
    if shape <= 0 or scale <= 0:
        raise ValueError("Weibull shape and scale must be positive")
    return scale * math.log(2) ** (1 / shape)


def weibull_variance(shape: float, scale: float) -> float:
    """Variance of a Weibull(k, λ)."""
    if shape <= 0 or scale <= 0:
        raise ValueError("Weibull shape and scale must be positive")
    g1 = math.gamma(1 + 1 / shape)
    g2 = math.gamma(1 + 2 / shape)
    return scale * scale * (g2 - g1 * g1)
