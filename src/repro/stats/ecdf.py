"""Empirical CDF, density-histogram and QQ-plot utilities.

These back the distribution figures of the paper: Fig 1 (lifetime PDF/CDF),
Fig 8 (benchmark histograms), Fig 9 (disk-space PDF/CDF) and Fig 12
(generated-vs-actual CDF comparison).  The QQ helper reproduces the
"visually confirmed QQ-plots" mentioned in Section VI-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ECDF:
    """Empirical cumulative distribution function of a 1-D sample."""

    #: Sorted unique sample values.
    x: np.ndarray
    #: Cumulative fraction at each value of ``x`` (right-continuous).
    y: np.ndarray

    @classmethod
    def from_sample(cls, sample: "np.ndarray | list[float]") -> "ECDF":
        """Build the ECDF of ``sample`` (must be non-empty)."""
        data = np.sort(np.asarray(sample, dtype=float))
        if data.size == 0:
            raise ValueError("cannot build an ECDF from an empty sample")
        values, counts = np.unique(data, return_counts=True)
        cumulative = np.cumsum(counts) / data.size
        return cls(x=values, y=cumulative)

    def __call__(self, points: "np.ndarray | float") -> np.ndarray:
        """Evaluate the ECDF at ``points``."""
        pts = np.asarray(points, dtype=float)
        idx = np.searchsorted(self.x, pts, side="right")
        padded = np.concatenate(([0.0], self.y))
        return padded[idx]

    def quantile(self, q: "np.ndarray | float") -> np.ndarray:
        """Empirical quantile function (inverse CDF) at probabilities ``q``."""
        probs = np.asarray(q, dtype=float)
        if np.any((probs < 0) | (probs > 1)):
            raise ValueError("quantile probabilities must lie in [0, 1]")
        idx = np.searchsorted(self.y, probs, side="left")
        idx = np.clip(idx, 0, self.x.size - 1)
        return self.x[idx]

    def max_distance(self, other: "ECDF") -> float:
        """Kolmogorov–Smirnov distance between two ECDFs."""
        grid = np.union1d(self.x, other.x)
        return float(np.max(np.abs(self(grid) - other(grid))))


def histogram_density(
    sample: "np.ndarray | list[float]",
    bins: "int | np.ndarray" = 50,
    value_range: "tuple[float, float] | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Density-normalised histogram: returns ``(bin_centres, density)``.

    Thin wrapper over :func:`numpy.histogram` that hands back bin centres
    instead of edges, which is what the figure-reproduction benches print.
    """
    data = np.asarray(sample, dtype=float)
    if data.size == 0:
        raise ValueError("cannot histogram an empty sample")
    density, edges = np.histogram(data, bins=bins, range=value_range, density=True)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, density


def qq_points(
    sample_a: "np.ndarray | list[float]",
    sample_b: "np.ndarray | list[float]",
    n_points: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantile–quantile point series for two samples.

    Returns matched quantiles ``(qa, qb)`` at ``n_points`` evenly spaced
    probabilities in (0, 1).  Points near the diagonal indicate the samples
    share a distribution; this reproduces the QQ validation of Section VI-B.
    """
    if n_points < 2:
        raise ValueError("need at least two QQ points")
    probs = np.linspace(0.5 / n_points, 1 - 0.5 / n_points, n_points)
    qa = np.quantile(np.asarray(sample_a, dtype=float), probs)
    qb = np.quantile(np.asarray(sample_b, dtype=float), probs)
    return qa, qb


def qq_max_relative_deviation(
    sample_a: "np.ndarray | list[float]",
    sample_b: "np.ndarray | list[float]",
    n_points: int = 100,
    trim: float = 0.05,
) -> float:
    """Largest relative deviation |qa-qb|/|qa| over central QQ quantiles.

    The ``trim`` fraction of extreme quantiles on each side is ignored, as
    tails of finite samples are noisy.  Used by validation tests as a scalar
    "the QQ plot looks straight" check.
    """
    qa, qb = qq_points(sample_a, sample_b, n_points=n_points)
    lo = int(n_points * trim)
    hi = n_points - lo
    qa, qb = qa[lo:hi], qb[lo:hi]
    scale = np.maximum(np.abs(qa), 1e-12)
    return float(np.max(np.abs(qa - qb) / scale))
