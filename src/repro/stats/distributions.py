"""The seven candidate distribution families compared in the paper.

Section V-F/V-G of the paper tests processor-speed and disk-space samples
against seven families — normal, log-normal, exponential, Weibull, Pareto,
gamma and log-gamma — using maximum-likelihood fits and subsampled
Kolmogorov–Smirnov tests.  This module wraps the corresponding
:mod:`scipy.stats` distributions behind a uniform interface so the selection
procedure (:mod:`repro.stats.kstest`) can treat them interchangeably.

"Log-gamma" here follows the measurement-modelling convention (as in the
paper's availability references): ``X`` is log-gamma when ``log X`` is
gamma-distributed — the multiplicative analogue of the log-normal.  (This is
*not* :data:`scipy.stats.loggamma`, which is the distribution of the log of
a gamma variate and converges to a normal, making it indistinguishable from
the normal family in a goodness-of-fit contest.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps


@dataclass(frozen=True)
class DistributionFamily:
    """One of the candidate families, wrapping a scipy distribution.

    ``fixed_loc`` pins the location parameter during fitting, which is the
    standard choice for the positive-support families (their MLE is unstable
    and often degenerate when ``loc`` floats freely on benchmark-style data).

    ``log_transformed`` families model ``log X`` with ``scipy_dist``; their
    support is ``x`` such that ``log x`` lies in the inner support.
    """

    name: str
    scipy_dist: "_sps.rv_continuous"
    fixed_loc: "float | None" = None
    log_transformed: bool = False

    def supports(self, data: np.ndarray) -> bool:
        """Whether this family can possibly describe ``data``."""
        if self.log_transformed:
            if np.any(data <= 0):
                return False
            inner = np.log(data)
        else:
            inner = data
        if self.fixed_loc is not None and np.any(inner <= self.fixed_loc):
            return False
        return True

    def fit(self, sample: np.ndarray) -> "FittedDistribution":
        """Maximum-likelihood fit of this family to ``sample``."""
        data = np.asarray(sample, dtype=float)
        if data.size < 2:
            raise ValueError("need at least two observations to fit")
        if not self.supports(data):
            raise ValueError(f"family {self.name!r} cannot describe this sample")
        inner = np.log(data) if self.log_transformed else data
        if self.fixed_loc is None:
            params = self.scipy_dist.fit(inner)
        else:
            params = self.scipy_dist.fit(inner, floc=self.fixed_loc)
        return FittedDistribution(family=self, params=tuple(float(p) for p in params))

    # -- evaluation given parameters -------------------------------------

    def cdf(self, x: "np.ndarray | float", params: tuple[float, ...]) -> np.ndarray:
        """CDF at ``x`` for the given parameters."""
        if self.log_transformed:
            x_arr = np.asarray(x, dtype=float)
            with np.errstate(divide="ignore"):
                inner = np.where(x_arr > 0, np.log(np.maximum(x_arr, 1e-300)), -np.inf)
            return self.scipy_dist.cdf(inner, *params)
        return self.scipy_dist.cdf(x, *params)

    def pdf(self, x: "np.ndarray | float", params: tuple[float, ...]) -> np.ndarray:
        """PDF at ``x`` for the given parameters."""
        if self.log_transformed:
            x_arr = np.asarray(x, dtype=float)
            safe = np.maximum(x_arr, 1e-300)
            return np.where(
                x_arr > 0, self.scipy_dist.pdf(np.log(safe), *params) / safe, 0.0
            )
        return self.scipy_dist.pdf(x, *params)

    def sample(
        self, params: tuple[float, ...], size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``size`` variates for the given parameters."""
        draws = self.scipy_dist.rvs(*params, size=size, random_state=rng)
        return np.exp(draws) if self.log_transformed else draws

    def mean(self, params: tuple[float, ...]) -> float:
        """Distribution mean (``inf`` where the moment diverges)."""
        if self.log_transformed:
            return self._exp_moment(params, order=1)
        return float(self.scipy_dist.mean(*params))

    def std(self, params: tuple[float, ...]) -> float:
        """Distribution standard deviation (``inf`` where it diverges)."""
        if self.log_transformed:
            m1 = self._exp_moment(params, order=1)
            m2 = self._exp_moment(params, order=2)
            if not np.isfinite(m1) or not np.isfinite(m2):
                return float("inf")
            return float(np.sqrt(max(m2 - m1 * m1, 0.0)))
        return float(self.scipy_dist.std(*params))

    def _exp_moment(self, params: tuple[float, ...], order: int) -> float:
        """``E[X^order] = E[e^{order · Y}]``, the inner MGF at ``order``."""
        try:
            return float(self.scipy_dist.expect(
                lambda y: np.exp(order * y), args=params[:-2] or (),
                loc=params[-2], scale=params[-1],
            ))
        except Exception:  # noqa: BLE001 - divergent integrals
            return float("inf")


@dataclass(frozen=True)
class FittedDistribution:
    """A distribution family together with MLE parameters for a sample."""

    family: DistributionFamily
    params: tuple[float, ...]

    @property
    def name(self) -> str:
        """Name of the underlying family (e.g. ``"lognormal"``)."""
        return self.family.name

    def cdf(self, x: "np.ndarray | float") -> np.ndarray:
        """Cumulative distribution function at ``x``."""
        return self.family.cdf(x, self.params)

    def pdf(self, x: "np.ndarray | float") -> np.ndarray:
        """Probability density function at ``x``."""
        return self.family.pdf(x, self.params)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` variates using ``rng``."""
        return self.family.sample(self.params, size, rng)

    def mean(self) -> float:
        """Distribution mean (may be ``inf`` for heavy-tailed fits)."""
        return self.family.mean(self.params)

    def std(self) -> float:
        """Distribution standard deviation (may be ``inf``)."""
        return self.family.std(self.params)


#: The candidate families of Section V-F, keyed by name.
CANDIDATE_FAMILIES: dict[str, DistributionFamily] = {
    "normal": DistributionFamily("normal", _sps.norm),
    "lognormal": DistributionFamily("lognormal", _sps.lognorm, fixed_loc=0.0),
    "exponential": DistributionFamily("exponential", _sps.expon, fixed_loc=0.0),
    "weibull": DistributionFamily("weibull", _sps.weibull_min, fixed_loc=0.0),
    "pareto": DistributionFamily("pareto", _sps.pareto, fixed_loc=0.0),
    "gamma": DistributionFamily("gamma", _sps.gamma, fixed_loc=0.0),
    # log X ~ gamma: the multiplicative analogue of the log-normal.
    "loggamma": DistributionFamily(
        "loggamma", _sps.gamma, fixed_loc=0.0, log_transformed=True
    ),
}


def get_family(name: str) -> DistributionFamily:
    """Look up a candidate family by name.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is not a candidate.
    """
    try:
        return CANDIDATE_FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(CANDIDATE_FAMILIES))
        raise KeyError(f"unknown distribution family {name!r}; known: {known}") from None
