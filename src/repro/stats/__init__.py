"""Statistics substrate: fitting, testing and sampling utilities.

This subpackage contains the generic statistical machinery the paper's
modelling pipeline is built from:

* :mod:`repro.stats.explaw` — fitting the ubiquitous ``a * exp(b t)`` law.
* :mod:`repro.stats.distributions` — the seven candidate distribution
  families the paper compares (normal, log-normal, exponential, Weibull,
  Pareto, gamma, log-gamma).
* :mod:`repro.stats.kstest` — the subsampled Kolmogorov–Smirnov selection
  procedure (average p-value of 100 tests on 50-sample subsets).
* :mod:`repro.stats.correlation` — labelled Pearson correlation matrices.
* :mod:`repro.stats.ecdf` — empirical CDF / histogram / QQ helpers.
* :mod:`repro.stats.moments` — moment conversions (log-normal, Weibull).
* :mod:`repro.stats.sketch` — mergeable t-digest-style quantile sketches
  for streamed medians/deciles/CDFs.
* :mod:`repro.stats.state` — the versioned ``to_state``/``from_state``
  serialization envelope reducers and sketches checkpoint through.
"""

from repro.stats.correlation import CorrelationMatrix, pearson_matrix
from repro.stats.distributions import (
    CANDIDATE_FAMILIES,
    DistributionFamily,
    FittedDistribution,
    get_family,
)
from repro.stats.ecdf import ECDF, histogram_density, qq_points
from repro.stats.explaw import ExponentialLawFit, fit_exponential_law
from repro.stats.kstest import KSSelectionResult, select_distribution, subsampled_ks_pvalue
from repro.stats.sketch import DEFAULT_COMPRESSION, QuantileSketch
from repro.stats.state import StateError
from repro.stats.moments import (
    lognormal_params_from_moments,
    lognormal_moments_from_params,
    weibull_mean,
    weibull_median,
)

__all__ = [
    "CANDIDATE_FAMILIES",
    "CorrelationMatrix",
    "DEFAULT_COMPRESSION",
    "QuantileSketch",
    "DistributionFamily",
    "ECDF",
    "ExponentialLawFit",
    "FittedDistribution",
    "KSSelectionResult",
    "StateError",
    "fit_exponential_law",
    "get_family",
    "histogram_density",
    "lognormal_moments_from_params",
    "lognormal_params_from_moments",
    "pearson_matrix",
    "qq_points",
    "select_distribution",
    "subsampled_ks_pvalue",
    "weibull_mean",
    "weibull_median",
]
