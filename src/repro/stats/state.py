"""Versioned state serialization shared by every reducer and sketch.

The checkpoint/resume subsystem (and, next, the distributed-backend
transport the ROADMAP plans) needs reducer state that survives a process:
every reducer and :class:`~repro.stats.sketch.QuantileSketch` exposes
``to_state()`` returning a JSON-safe dict and a ``from_state()``
classmethod restoring an *exactly* equivalent instance.

This module lives under :mod:`repro.stats` (not the engine) because the
sketch needs it and the engine imports the sketch — the helpers are
dependency-free so every layer can share one error type and envelope.

The contract:

* A state payload is a plain dict carrying ``kind`` (the class name) and
  ``state_version`` (the class's ``STATE_VERSION``) plus the class's own
  fields.  Everything is JSON-serialisable; float64 values survive the
  JSON round trip bit-exactly (Python renders them with ``repr``), so a
  restored reducer continues a fold with byte-identical arithmetic.
* ``from_state`` validates the payload — wrong kind, wrong version,
  missing or malformed fields all raise :class:`StateError` with a
  message naming what is wrong, never a silent misparse.
* Restoring then continuing must equal never having stopped:
  ``from_state(to_state(r)).update(c).result() == r.update(c).result()``
  exactly (property-tested in ``tests/properties/test_property_state.py``).
"""

from __future__ import annotations

from typing import Any

import numpy as np


class StateError(ValueError):
    """A reducer state payload is corrupt, mismatched or unsupported."""


def make_envelope(kind: str, version: int, fields: "dict | None" = None) -> dict:
    """A fresh state payload carrying the standard ``kind``/``state_version``
    envelope, plus the caller's fields.

    The construction-side counterpart of :func:`require_state`: payloads
    built through this (reducer states, export plans, the distributed
    backend's lease checkpoints and metrics documents) cannot drift from
    the envelope shape the validators check.  ``fields`` may not shadow
    the envelope keys.
    """
    payload = {"kind": kind, "state_version": version}
    if fields:
        overlap = {"kind", "state_version"} & set(fields)
        if overlap:
            raise ValueError(
                f"envelope fields {sorted(overlap)} are reserved for the "
                "kind/state_version envelope"
            )
        payload.update(fields)
    return payload


def require_state(state: Any, kind: str, version: int) -> dict:
    """Validate a state payload's envelope and return it as a dict.

    Checks that ``state`` is a dict whose ``kind`` and ``state_version``
    match the restoring class; anything else raises :class:`StateError`
    describing the mismatch (the error contract corrupted checkpoints and
    cross-version payloads rely on).
    """
    if not isinstance(state, dict):
        raise StateError(
            f"{kind} state must be a dict, got {type(state).__name__}"
        )
    got_kind = state.get("kind")
    if got_kind != kind:
        raise StateError(f"state kind {got_kind!r} cannot restore a {kind}")
    got_version = state.get("state_version")
    if got_version != version:
        raise StateError(
            f"{kind} state version {got_version!r} is not the supported {version}"
        )
    return state


def state_field(state: dict, kind: str, name: str) -> Any:
    """Fetch a required field from a validated payload (StateError if absent)."""
    if name not in state:
        raise StateError(f"{kind} state is missing the {name!r} field")
    return state[name]


def decode_floats(
    state: dict,
    kind: str,
    name: str,
    shape: "tuple[int, ...] | None" = None,
    finite: bool = False,
) -> np.ndarray:
    """Decode a float array field, optionally enforcing shape and finiteness.

    ``finite=True`` rejects NaN/±inf entries with a :class:`StateError` —
    the restore-side half of the engine's non-finite policy: an
    accumulator state containing a poisoned mean, co-moment or centroid
    would silently corrupt every statistic folded after the restore.
    """
    raw = state_field(state, kind, name)
    try:
        values = np.asarray(raw, dtype=float)
    except (TypeError, ValueError) as error:
        raise StateError(f"{kind} state field {name!r} is not numeric: {error}")
    if shape is not None and values.shape != shape:
        raise StateError(
            f"{kind} state field {name!r} has shape {values.shape}; "
            f"expected {shape}"
        )
    if finite and values.size and not np.isfinite(values).all():
        raise StateError(
            f"{kind} state field {name!r} contains non-finite values"
        )
    return values


def decode_count(state: dict, kind: str, name: str = "count") -> int:
    """Decode a non-negative integer count field."""
    raw = state_field(state, kind, name)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 0:
        raise StateError(
            f"{kind} state field {name!r} must be a non-negative integer, "
            f"got {raw!r}"
        )
    return raw


def decode_compression(state: dict, kind: str, name: str = "compression") -> int:
    """Decode a sketch compression field (integer >= 20, the sketch floor)."""
    raw = state_field(state, kind, name)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 20:
        raise StateError(
            f"{kind} state {name} must be an integer >= 20, got {raw!r}"
        )
    return raw


def decode_labels(state: dict, kind: str, name: str = "labels") -> "tuple[str, ...]":
    """Decode a tuple-of-strings labels field."""
    raw = state_field(state, kind, name)
    if not isinstance(raw, (list, tuple)) or not all(
        isinstance(label, str) for label in raw
    ):
        raise StateError(f"{kind} state field {name!r} must be a list of strings")
    return tuple(raw)
