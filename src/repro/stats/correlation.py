"""Labelled Pearson correlation matrices (Tables III and VIII).

The paper's central empirical observation is the correlation structure of
host resources — cores vs memory (r ≈ 0.6), Whetstone vs Dhrystone
(r ≈ 0.64), disk vs everything (r ≈ 0).  This module computes those matrices
with resource labels attached so analysis and validation code can address
entries by name instead of index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CorrelationMatrix:
    """A Pearson correlation matrix with named rows/columns."""

    labels: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.values, dtype=float)
        n = len(self.labels)
        if matrix.shape != (n, n):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {n} labels"
            )
        object.__setattr__(self, "values", matrix)

    def get(self, row: str, col: str) -> float:
        """Correlation between the resources named ``row`` and ``col``."""
        try:
            i = self.labels.index(row)
            j = self.labels.index(col)
        except ValueError as exc:
            raise KeyError(
                f"unknown label in ({row!r}, {col!r}); have {self.labels}"
            ) from exc
        return float(self.values[i, j])

    def submatrix(self, labels: "tuple[str, ...] | list[str]") -> "CorrelationMatrix":
        """Extract the correlation matrix restricted to ``labels`` (in order)."""
        idx = [self.labels.index(label) for label in labels]
        return CorrelationMatrix(
            labels=tuple(labels), values=self.values[np.ix_(idx, idx)]
        )

    def max_abs_difference(self, other: "CorrelationMatrix") -> float:
        """Largest absolute entry-wise difference on the common label order."""
        aligned = other.submatrix(self.labels)
        return float(np.max(np.abs(self.values - aligned.values)))

    def format_table(self, width: "int | None" = None, digits: int = 3) -> str:
        """Render the matrix as an aligned text table (paper-style)."""
        if width is None:
            width = max(max(len(label) for label in self.labels), digits + 4) + 2
        header = " " * width + "".join(f"{label:>{width}}" for label in self.labels)
        rows = [header]
        for label, row in zip(self.labels, self.values):
            cells = "".join(f"{value:>{width}.{digits}f}" for value in row)
            rows.append(f"{label:>{width}}" + cells)
        return "\n".join(rows)


def pearson_matrix(columns: "dict[str, np.ndarray]") -> CorrelationMatrix:
    """Pearson correlation matrix of the given named columns.

    Columns must share a common length of at least two.  Constant columns
    produce NaN correlations in :func:`numpy.corrcoef`; those entries are
    replaced by 0 (no linear association measurable), with the diagonal
    restored to 1.
    """
    if not columns:
        raise ValueError("no columns given")
    labels = tuple(columns.keys())
    arrays = [np.asarray(columns[label], dtype=float) for label in labels]
    length = arrays[0].size
    if length < 2:
        raise ValueError("need at least two observations per column")
    for label, arr in zip(labels, arrays):
        if arr.ndim != 1 or arr.size != length:
            raise ValueError(f"column {label!r} has shape {arr.shape}; expected ({length},)")

    stacked = np.vstack(arrays)
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.corrcoef(stacked)
    matrix = np.atleast_2d(matrix)
    bad = ~np.isfinite(matrix)
    if bad.any():
        matrix = matrix.copy()
        matrix[bad] = 0.0
        np.fill_diagonal(matrix, 1.0)
    return CorrelationMatrix(labels=labels, values=matrix)
