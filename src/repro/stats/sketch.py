"""Mergeable quantile sketches for streamed distributions.

The paper characterises host resources by medians, deciles and full CDFs
(Figs 5–9, Tables III/IV) on heavy-tailed columns — exactly the quantities
the one-pass moment accumulators cannot produce.  :class:`QuantileSketch`
is a t-digest-style *merging* sketch (Dunning & Ertl): it keeps a bounded
set of weighted centroids whose resolution is finest near the tails, so
medians and deciles of a stream of any length are recovered to a small
fraction of a percent while shard sketches combine with :meth:`merge`.

The sketch is the streamed counterpart of ``np.quantile``: feeding the
whole sample through one sketch, or splitting it across several sketches
and merging them, yields quantiles within the compression-controlled error
bound of the exact batch values (property-tested against heavy-tailed
columns in ``tests/properties/test_property_sketch.py``).
"""

from __future__ import annotations

import numpy as np

from repro.stats.state import (
    StateError,
    decode_compression,
    decode_count,
    decode_floats,
    require_state,
    state_field,
)

#: Default compression (number of centroids scales with it).  200 keeps
#: median/decile error well under 0.1 % on the resource columns while the
#: sketch state stays a few kilobytes.
DEFAULT_COMPRESSION = 200


class QuantileSketch:
    """Bounded-memory, mergeable quantile summary of a scalar stream.

    ``update`` folds value chunks in, ``merge`` folds another sketch in,
    ``quantile``/``cdf`` interrogate the summary.  Centroid resolution
    follows the t-digest ``k1`` scale function, so extreme quantiles stay
    near-exact (the global min/max are tracked exactly) and mid-quantiles
    carry the error bound.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(self, compression: int = DEFAULT_COMPRESSION):
        if compression < 20:
            raise ValueError("compression must be at least 20")
        self.compression = int(compression)
        self.count = 0
        self._means = np.empty(0)
        self._weights = np.empty(0)
        self._buffer: "list[tuple[np.ndarray, np.ndarray]]" = []
        self._buffered = 0
        self._min = np.inf
        self._max = -np.inf

    # -- ingestion ---------------------------------------------------------

    def update(self, values: "np.ndarray | list[float] | float") -> "QuantileSketch":
        """Fold a chunk of values into the sketch."""
        data = np.atleast_1d(np.asarray(values, dtype=float)).ravel()
        if data.size == 0:
            return self
        if not np.all(np.isfinite(data)):
            raise ValueError("QuantileSketch requires finite values")
        self._buffer.append((data, np.ones(data.size)))
        self._buffered += data.size
        self.count += data.size
        self._min = min(self._min, float(data.min()))
        self._max = max(self._max, float(data.max()))
        if self._buffered >= 10 * self.compression:
            self._compress()
        return self

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch (e.g. a shard's) into this one."""
        if other.count == 0:
            return self
        other._compress()
        self._buffer.append((other._means.copy(), other._weights.copy()))
        self._buffered += other._means.size
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    def _compress(self) -> None:
        """Merge buffered points and centroids into a fresh centroid set."""
        if not self._buffer:
            return
        values = [self._means] + [v for v, _ in self._buffer]
        weights = [self._weights] + [w for _, w in self._buffer]
        self._buffer = []
        self._buffered = 0
        x = np.concatenate(values)
        w = np.concatenate(weights)
        if x.size == 0:
            return
        order = np.argsort(x, kind="stable")
        x, w = x[order], w[order]
        total = w.sum()

        # t-digest merge pass with the k1 scale function
        # k(q) = (c / 2π) asin(2q − 1); a centroid may span [q0, q1] only
        # while k(q1) − k(q0) <= 1.
        means: "list[float]" = []
        sizes: "list[float]" = []
        acc_mean = x[0]
        acc_weight = w[0]
        emitted = 0.0
        k_lo = self._k(0.0)
        for i in range(1, x.size):
            proposed = acc_weight + w[i]
            if self._k((emitted + proposed) / total) - k_lo <= 1.0:
                acc_mean += (x[i] - acc_mean) * (w[i] / proposed)
                acc_weight = proposed
            else:
                means.append(acc_mean)
                sizes.append(acc_weight)
                emitted += acc_weight
                k_lo = self._k(emitted / total)
                acc_mean = x[i]
                acc_weight = w[i]
        means.append(acc_mean)
        sizes.append(acc_weight)
        self._means = np.asarray(means)
        self._weights = np.asarray(sizes)

    def _k(self, q: float) -> float:
        """The t-digest k1 potential at quantile ``q``."""
        q = min(1.0, max(0.0, q))
        return self.compression / (2.0 * np.pi) * np.arcsin(2.0 * q - 1.0)

    # -- serialization -----------------------------------------------------

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot of the sketch.

        The buffer is compressed first so the payload is the canonical
        centroid set; restoring with :meth:`from_state` and continuing the
        stream is bit-identical to never having serialised (floats survive
        the JSON round trip exactly).
        """
        self._compress()
        return {
            "kind": "QuantileSketch",
            "state_version": self.STATE_VERSION,
            "compression": self.compression,
            "count": int(self.count),
            "means": self._means.tolist(),
            "weights": self._weights.tolist(),
            "min": float(self._min),
            "max": float(self._max),
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        """Restore a sketch from a :meth:`to_state` payload.

        Raises :class:`~repro.stats.state.StateError` on a corrupted,
        mismatched or wrong-version payload.
        """
        kind = "QuantileSketch"
        require_state(state, kind, cls.STATE_VERSION)
        compression = decode_compression(state, kind)
        count = decode_count(state, kind)
        means = decode_floats(state, kind, "means")
        weights = decode_floats(state, kind, "weights")
        if means.ndim != 1 or means.shape != weights.shape:
            raise StateError(
                f"{kind} state means/weights must be 1-D arrays of equal "
                f"length, got {means.shape} and {weights.shape}"
            )
        if (count == 0) != (means.size == 0):
            raise StateError(f"{kind} state count disagrees with its centroids")
        if means.size and (
            not np.all(np.isfinite(means))
            or not np.all(np.isfinite(weights))
            or np.any(weights <= 0)
        ):
            raise StateError(
                f"{kind} state centroids must be finite with finite positive "
                "weights"
            )
        low = float(state_field(state, kind, "min"))
        high = float(state_field(state, kind, "max"))
        if count and not (np.isfinite(low) and np.isfinite(high) and low <= high):
            raise StateError(
                f"{kind} state min/max ({low!r}, {high!r}) are not a finite range"
            )
        # Structural invariants of a valid sketch: centroids sorted within
        # [min, max], unit weights summing exactly to the count (weights
        # are sums of 1.0s, exact in float64).  A payload violating these
        # would interpolate silently wrong quantiles.
        if means.size and (
            np.any(np.diff(means) < 0)
            or means[0] < low
            or means[-1] > high
            or float(weights.sum()) != float(count)
        ):
            raise StateError(
                f"{kind} state centroids are inconsistent (unsorted, outside "
                "min/max, or weights not summing to count)"
            )
        sketch = cls(compression)
        sketch.count = count
        sketch._means = means
        sketch._weights = weights
        sketch._min = low
        sketch._max = high
        return sketch

    # -- queries -----------------------------------------------------------

    @property
    def min(self) -> float:
        """Exact minimum of the stream (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum of the stream (``-inf`` when empty)."""
        return self._max

    def centroid_count(self) -> int:
        """Number of stored centroids (bounded by ~2 × compression)."""
        self._compress()
        return int(self._means.size)

    def quantile(self, q: "np.ndarray | float") -> "np.ndarray | float":
        """Estimate the quantile(s) at probabilities ``q`` in [0, 1]."""
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        probs = np.asarray(q, dtype=float)
        if np.any((probs < 0.0) | (probs > 1.0)):
            raise ValueError("quantile probabilities must lie in [0, 1]")
        self._compress()
        # Piecewise-linear through centroid weight midpoints, anchored at
        # the exact stream min/max.
        mids = np.cumsum(self._weights) - 0.5 * self._weights
        xp = np.concatenate(([0.0], mids, [float(self.count)]))
        fp = np.concatenate(([self._min], self._means, [self._max]))
        out = np.interp(probs * self.count, xp, fp)
        return float(out) if np.isscalar(q) or probs.ndim == 0 else out

    def median(self) -> float:
        """Estimated median of the stream."""
        return float(self.quantile(0.5))

    def cdf(self, x: "np.ndarray | float") -> "np.ndarray | float":
        """Estimate P(X <= x) under the sketched distribution."""
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        self._compress()
        pts = np.asarray(x, dtype=float)
        mids = np.cumsum(self._weights) - 0.5 * self._weights
        xp = np.concatenate(([self._min], self._means, [self._max]))
        fp = np.concatenate(([0.0], mids / self.count, [1.0]))
        out = np.interp(pts, xp, fp, left=0.0, right=1.0)
        return float(out) if np.isscalar(x) or pts.ndim == 0 else out

    def to_ecdf(self, n_points: int = 256):
        """Approximate :class:`~repro.stats.ecdf.ECDF` of the stream.

        Evaluates the sketch quantile function on an even probability grid,
        which gives the distribution-function view the Fig 5–9 CDF panels
        and the streamed KS comparisons consume.
        """
        from repro.stats.ecdf import ECDF

        if n_points < 2:
            raise ValueError("need at least two ECDF points")
        probs = np.linspace(0.0, 1.0, n_points)
        xs = np.asarray(self.quantile(probs))
        values, first = np.unique(xs, return_index=True)
        # Keep the *largest* probability attached to each support point so
        # the step function stays right-continuous.
        last = np.concatenate((first[1:] - 1, [xs.size - 1]))
        return ECDF(x=values, y=probs[last])

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self.count}, compression={self.compression}, "
            f"centroids={self._means.size}, buffered={self._buffered})"
        )
