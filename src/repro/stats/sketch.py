"""Mergeable quantile sketches for streamed distributions.

The paper characterises host resources by medians, deciles and full CDFs
(Figs 5–9, Tables III/IV) on heavy-tailed columns — exactly the quantities
the one-pass moment accumulators cannot produce.  :class:`QuantileSketch`
is a t-digest-style *merging* sketch (Dunning & Ertl): it keeps a bounded
set of weighted centroids whose resolution is finest near the tails, so
medians and deciles of a stream of any length are recovered to a small
fraction of a percent while shard sketches combine with :meth:`merge`.

The sketch is the streamed counterpart of ``np.quantile``: feeding the
whole sample through one sketch, or splitting it across several sketches
and merging them, yields quantiles within the compression-controlled error
bound of the exact batch values (property-tested against heavy-tailed
columns in ``tests/properties/test_property_sketch.py``).
"""

from __future__ import annotations

import numpy as np

from repro.stats.state import (
    StateError,
    decode_compression,
    decode_count,
    decode_floats,
    require_state,
    state_field,
)

#: Default compression (number of centroids scales with it).  200 keeps
#: median/decile error well under 0.1 % on the resource columns while the
#: sketch state stays a few kilobytes.
DEFAULT_COMPRESSION = 200


class QuantileSketch:
    """Bounded-memory, mergeable quantile summary of a scalar stream.

    ``update`` folds value chunks in, ``merge`` folds another sketch in,
    ``quantile``/``cdf`` interrogate the summary.  Centroid resolution
    follows the t-digest ``k1`` scale function, so extreme quantiles stay
    near-exact (the global min/max are tracked exactly) and mid-quantiles
    carry the error bound.
    """

    #: Serialization schema version for :meth:`to_state` payloads.
    STATE_VERSION = 1

    def __init__(self, compression: int = DEFAULT_COMPRESSION):
        if compression < 20:
            raise ValueError("compression must be at least 20")
        self.compression = int(compression)
        self.count = 0
        self._means = np.empty(0)
        self._weights = np.empty(0)
        #: Pending unit-weight chunks; the matching weight vector is a
        #: single ``np.ones`` materialised once per compression, not one
        #: allocation per ``update`` call.
        self._buffer: "list[np.ndarray]" = []
        #: Pending single values (the scalar fast path skips array
        #: construction entirely — a hot loop of per-host updates costs a
        #: float append, not four numpy allocations).
        self._scalars: "list[float]" = []
        #: Pending weighted centroid sets folded in by :meth:`merge`.
        self._weighted: "list[tuple[np.ndarray, np.ndarray]]" = []
        self._buffered = 0
        self._min = np.inf
        self._max = -np.inf

    # -- ingestion ---------------------------------------------------------

    def update(self, values: "np.ndarray | list[float] | float") -> "QuantileSketch":
        """Fold a chunk of values (or one scalar) into the sketch.

        The buffer flushes on *total buffered size* (values, not calls),
        so a million one-value updates hold the same bounded memory as one
        million-value update.
        """
        if isinstance(values, (float, int)) and not isinstance(values, bool):
            value = float(values)
            if not np.isfinite(value):
                raise ValueError("QuantileSketch requires finite values")
            self._scalars.append(value)
            self._buffered += 1
            self.count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        else:
            data = np.atleast_1d(np.asarray(values, dtype=float)).ravel()
            if data.size == 0:
                return self
            if not np.all(np.isfinite(data)):
                raise ValueError("QuantileSketch requires finite values")
            self._buffer.append(data)
            self._buffered += data.size
            self.count += data.size
            self._min = min(self._min, float(data.min()))
            self._max = max(self._max, float(data.max()))
        if self._buffered >= 10 * self.compression:
            self._compress()
        return self

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch (e.g. a shard's) into this one."""
        if other.count == 0:
            return self
        other._compress()
        self._weighted.append((other._means.copy(), other._weights.copy()))
        self._buffered += other._means.size
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    def _pending(self) -> bool:
        return bool(self._buffer or self._scalars or self._weighted)

    def _compress(self) -> None:
        """Merge buffered points and centroids into a fresh centroid set.

        One vectorised t-digest merge pass with the k1 scale function
        ``k(q) = (c / 2π) asin(2q − 1)``: a centroid may span cumulative
        quantiles ``[q0, q1]`` only while ``k(q1) − k(q0) <= 1``.  Instead
        of walking the sorted values one Python iteration at a time, the
        pass precomputes the cumulative weights and finds each centroid's
        span with one ``searchsorted`` against the inverse-scale boundary
        — O(centroids · log n) instead of O(n) interpreter work — then
        reduces every span's weighted mean with ``np.add.reduceat``.
        Weights are sums of 1.0s (exact in float64), so the cumulative
        weights, span totals and the emitted ``k`` positions are exact and
        the segmentation is independent of how the pass is driven; the
        property suite pins centroid-for-centroid equality against a
        scalar reference loop of the same recurrence.
        """
        if not self._pending():
            return
        unit_values = self._buffer
        if self._scalars:
            unit_values = unit_values + [np.asarray(self._scalars, dtype=float)]
        unit_only = self._means.size == 0 and not self._weighted
        unit_total = sum(v.size for v in unit_values)
        if unit_only:
            x = np.concatenate(unit_values) if len(unit_values) != 1 else unit_values[0]
            w = None
        else:
            values = [self._means] + [m for m, _ in self._weighted] + unit_values
            weights = (
                [self._weights]
                + [w for _, w in self._weighted]
                + [np.ones(unit_total)]
            )
            x = np.concatenate(values)
            w = np.concatenate(weights)
        self._buffer = []
        self._scalars = []
        self._weighted = []
        self._buffered = 0
        if x.size == 0:
            return
        if unit_only:
            # All weights are 1.0: sort values directly (ties carry
            # identical value and weight, so stability is irrelevant) and
            # the cumulative weight is just the 1-based position.
            x = np.sort(x)
            total = float(x.size)
            cumulative = np.arange(1.0, total + 1.0)
        else:
            order = np.argsort(x, kind="stable")
            x, w = x[order], w[order]
            total = w.sum()
            cumulative = np.cumsum(w)

        n = x.size
        bounds: "list[int]" = []
        start = 0
        k_lo = self._k(0.0)
        k_max = self._k(1.0)
        while start < n:
            if k_lo + 1.0 >= k_max:
                bounds.append(n)
                break
            limit = self._k_inverse(k_lo + 1.0) * total
            j = int(np.searchsorted(cumulative, limit, side="right"))
            j = max(j, start + 1)  # a span always takes its first point
            bounds.append(j)
            if j >= n:
                break
            k_lo = self._k(cumulative[j - 1] / total)
            start = j

        edges = np.asarray(bounds, dtype=np.intp)
        starts = np.concatenate(([0], edges[:-1]))
        if unit_only:
            sizes = np.diff(np.concatenate(([0], edges))).astype(float)
            means = np.add.reduceat(x, starts) / sizes
        else:
            sizes = np.add.reduceat(w, starts)
            means = np.add.reduceat(x * w, starts) / sizes
        # A span's mean must lie within its value range; enforce it so
        # float rounding (or an overflowing product sum on extreme
        # magnitudes) can never produce out-of-order or non-finite
        # centroids — from_state rejects both.
        low, high = x[starts], x[edges - 1]
        bad = ~np.isfinite(means)
        if bad.any():
            means[bad] = 0.5 * low[bad] + 0.5 * high[bad]
        np.clip(means, low, high, out=means)
        self._means = means
        self._weights = sizes

    def _k(self, q: float) -> float:
        """The t-digest k1 potential at quantile ``q``."""
        q = min(1.0, max(0.0, q))
        return self.compression / (2.0 * np.pi) * np.arcsin(2.0 * q - 1.0)

    def _k_inverse(self, k: float) -> float:
        """The quantile whose k1 potential is ``k`` (clipped into [0, 1])."""
        k = min(self._k(1.0), max(self._k(0.0), k))
        return 0.5 * (np.sin(2.0 * np.pi * k / self.compression) + 1.0)

    # -- serialization -----------------------------------------------------

    def to_state(self) -> dict:
        """Versioned JSON-safe snapshot of the sketch.

        The buffer is compressed first so the payload is the canonical
        centroid set; restoring with :meth:`from_state` and continuing the
        stream is bit-identical to never having serialised (floats survive
        the JSON round trip exactly).
        """
        self._compress()
        return {
            "kind": "QuantileSketch",
            "state_version": self.STATE_VERSION,
            "compression": self.compression,
            "count": int(self.count),
            "means": self._means.tolist(),
            "weights": self._weights.tolist(),
            "min": float(self._min),
            "max": float(self._max),
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        """Restore a sketch from a :meth:`to_state` payload.

        Raises :class:`~repro.stats.state.StateError` on a corrupted,
        mismatched or wrong-version payload.
        """
        kind = "QuantileSketch"
        require_state(state, kind, cls.STATE_VERSION)
        compression = decode_compression(state, kind)
        count = decode_count(state, kind)
        means = decode_floats(state, kind, "means")
        weights = decode_floats(state, kind, "weights")
        if means.ndim != 1 or means.shape != weights.shape:
            raise StateError(
                f"{kind} state means/weights must be 1-D arrays of equal "
                f"length, got {means.shape} and {weights.shape}"
            )
        if (count == 0) != (means.size == 0):
            raise StateError(f"{kind} state count disagrees with its centroids")
        if means.size and (
            not np.all(np.isfinite(means))
            or not np.all(np.isfinite(weights))
            or np.any(weights <= 0)
        ):
            raise StateError(
                f"{kind} state centroids must be finite with finite positive "
                "weights"
            )
        low = float(state_field(state, kind, "min"))
        high = float(state_field(state, kind, "max"))
        if count and not (np.isfinite(low) and np.isfinite(high) and low <= high):
            raise StateError(
                f"{kind} state min/max ({low!r}, {high!r}) are not a finite range"
            )
        # Structural invariants of a valid sketch: centroids sorted within
        # [min, max], unit weights summing exactly to the count (weights
        # are sums of 1.0s, exact in float64).  A payload violating these
        # would interpolate silently wrong quantiles.
        if means.size and (
            np.any(np.diff(means) < 0)
            or means[0] < low
            or means[-1] > high
            or float(weights.sum()) != float(count)
        ):
            raise StateError(
                f"{kind} state centroids are inconsistent (unsorted, outside "
                "min/max, or weights not summing to count)"
            )
        sketch = cls(compression)
        sketch.count = count
        sketch._means = means
        sketch._weights = weights
        sketch._min = low
        sketch._max = high
        return sketch

    # -- queries -----------------------------------------------------------

    @property
    def min(self) -> float:
        """Exact minimum of the stream (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum of the stream (``-inf`` when empty)."""
        return self._max

    def centroid_count(self) -> int:
        """Number of stored centroids (bounded by ~2 × compression)."""
        self._compress()
        return int(self._means.size)

    def quantile(self, q: "np.ndarray | float") -> "np.ndarray | float":
        """Estimate the quantile(s) at probabilities ``q`` in [0, 1]."""
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        probs = np.asarray(q, dtype=float)
        if np.any((probs < 0.0) | (probs > 1.0)):
            raise ValueError("quantile probabilities must lie in [0, 1]")
        self._compress()
        # Piecewise-linear through centroid weight midpoints, anchored at
        # the exact stream min/max.
        mids = np.cumsum(self._weights) - 0.5 * self._weights
        xp = np.concatenate(([0.0], mids, [float(self.count)]))
        fp = np.concatenate(([self._min], self._means, [self._max]))
        out = np.interp(probs * self.count, xp, fp)
        return float(out) if np.isscalar(q) or probs.ndim == 0 else out

    def median(self) -> float:
        """Estimated median of the stream."""
        return float(self.quantile(0.5))

    def cdf(self, x: "np.ndarray | float") -> "np.ndarray | float":
        """Estimate P(X <= x) under the sketched distribution."""
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        self._compress()
        pts = np.asarray(x, dtype=float)
        mids = np.cumsum(self._weights) - 0.5 * self._weights
        xp = np.concatenate(([self._min], self._means, [self._max]))
        fp = np.concatenate(([0.0], mids / self.count, [1.0]))
        out = np.interp(pts, xp, fp, left=0.0, right=1.0)
        return float(out) if np.isscalar(x) or pts.ndim == 0 else out

    def to_ecdf(self, n_points: int = 256):
        """Approximate :class:`~repro.stats.ecdf.ECDF` of the stream.

        Evaluates the sketch quantile function on an even probability grid,
        which gives the distribution-function view the Fig 5–9 CDF panels
        and the streamed KS comparisons consume.
        """
        from repro.stats.ecdf import ECDF

        if n_points < 2:
            raise ValueError("need at least two ECDF points")
        probs = np.linspace(0.0, 1.0, n_points)
        xs = np.asarray(self.quantile(probs))
        values, first = np.unique(xs, return_index=True)
        # Keep the *largest* probability attached to each support point so
        # the step function stays right-continuous.
        last = np.concatenate((first[1:] - 1, [xs.size - 1]))
        return ECDF(x=values, y=probs[last])

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self.count}, compression={self.compression}, "
            f"centroids={self._means.size}, buffered={self._buffered})"
        )
