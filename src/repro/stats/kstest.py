"""Subsampled Kolmogorov–Smirnov distribution selection (Section V-F).

The KS test rejects *any* parametric family on samples of hundreds of
thousands of hosts, because it is sensitive to tiny discrepancies at scale.
The paper (following its refs [26], [27]) therefore averages the p-values of
100 KS tests, each run on a random subset of 50 observations, and picks the
family with the largest average p-value.  This module implements exactly
that procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as _sps

from repro.stats.distributions import (
    CANDIDATE_FAMILIES,
    DistributionFamily,
    FittedDistribution,
)

#: Paper defaults: 100 subsamples of 50 observations each.
DEFAULT_N_SUBSAMPLES = 100
DEFAULT_SUBSAMPLE_SIZE = 50


def subsampled_ks_pvalue(
    sample: np.ndarray,
    fitted: FittedDistribution,
    rng: np.random.Generator,
    n_subsamples: int = DEFAULT_N_SUBSAMPLES,
    subsample_size: int = DEFAULT_SUBSAMPLE_SIZE,
) -> float:
    """Average KS p-value of ``fitted`` over random subsets of ``sample``.

    Each round draws ``subsample_size`` observations without replacement
    (with replacement if the sample is smaller than that) and runs a
    one-sample KS test against the fitted CDF.
    """
    data = np.asarray(sample, dtype=float)
    if data.size < 2:
        raise ValueError("need at least two observations")
    replace = data.size < subsample_size
    p_values = np.empty(n_subsamples)
    for i in range(n_subsamples):
        subset = rng.choice(data, size=subsample_size, replace=replace)
        result = _sps.kstest(subset, fitted.cdf)
        p_values[i] = result.pvalue
    return float(p_values.mean())


@dataclass(frozen=True)
class KSSelectionResult:
    """Outcome of comparing candidate families on one sample."""

    #: Family with the highest average p-value.
    best: FittedDistribution
    #: Average p-value per family name (unfittable families are absent).
    p_values: dict[str, float] = field(default_factory=dict)
    #: Fitted parameters per family name.
    fits: dict[str, FittedDistribution] = field(default_factory=dict)

    @property
    def best_name(self) -> str:
        """Name of the winning family."""
        return self.best.name

    def ranking(self) -> list[tuple[str, float]]:
        """Families sorted by decreasing average p-value."""
        return sorted(self.p_values.items(), key=lambda kv: kv[1], reverse=True)


def select_distribution(
    sample: np.ndarray,
    rng: np.random.Generator,
    families: "dict[str, DistributionFamily] | None" = None,
    n_subsamples: int = DEFAULT_N_SUBSAMPLES,
    subsample_size: int = DEFAULT_SUBSAMPLE_SIZE,
) -> KSSelectionResult:
    """Pick the best-fitting family for ``sample`` by subsampled KS.

    Families whose MLE fails to converge on the sample (e.g. Pareto on data
    containing non-positive values) are skipped rather than failing the whole
    selection, mirroring how such families would simply lose in practice.
    """
    data = np.asarray(sample, dtype=float)
    chosen = families if families is not None else CANDIDATE_FAMILIES

    p_values: dict[str, float] = {}
    fits: dict[str, FittedDistribution] = {}
    for name, family in chosen.items():
        if not family.supports(data):
            continue  # e.g. positive-support family on data straddling zero
        try:
            fitted = family.fit(data)
        except Exception:  # noqa: BLE001 - scipy raises various fit errors
            continue
        if not np.all(np.isfinite(fitted.params)):
            continue
        fits[name] = fitted
        p_values[name] = subsampled_ks_pvalue(
            data, fitted, rng, n_subsamples=n_subsamples, subsample_size=subsample_size
        )

    if not p_values:
        raise ValueError("no candidate family could be fitted to the sample")
    best_name = max(p_values, key=p_values.get)
    return KSSelectionResult(best=fits[best_name], p_values=p_values, fits=fits)


#: Grid size for :func:`quantile_grid_sample` — fine enough that the
#: subsampled-KS selection is insensitive to the inversion (50-observation
#: subsets probe far coarser structure than 1/2000 quantile spacing).
DEFAULT_GRID_SIZE = 2000


def quantile_grid_sample(quantile_fn, n: int = DEFAULT_GRID_SIZE) -> np.ndarray:
    """Deterministic inverse-CDF pseudo-sample from a quantile function.

    Evaluates ``quantile_fn`` at the ``n`` midpoint probabilities
    ``(i + 0.5) / n`` — the streamed stand-in for a raw sample when only a
    mergeable :class:`~repro.stats.sketch.QuantileSketch` of the column
    exists (the ``fleet validate`` KS probes): the grid reproduces the
    sketch's distribution shape exactly and, unlike reservoir sampling,
    adds no sampling noise of its own, so family selection over it is a
    pure function of the sketch state.
    """
    if n < 2:
        raise ValueError("need a grid of at least 2 probabilities")
    probs = (np.arange(n) + 0.5) / n
    values = np.asarray(quantile_fn(probs), dtype=float)
    if values.shape != (n,):
        raise ValueError(
            f"quantile_fn returned shape {values.shape}, expected ({n},)"
        )
    if not np.all(np.isfinite(values)):
        raise ValueError("quantile_fn produced non-finite values")
    return values


def select_distribution_streamed(
    sketch,
    rng: np.random.Generator,
    families: "dict[str, DistributionFamily] | None" = None,
    n_grid: int = DEFAULT_GRID_SIZE,
    n_subsamples: int = DEFAULT_N_SUBSAMPLES,
    subsample_size: int = DEFAULT_SUBSAMPLE_SIZE,
) -> KSSelectionResult:
    """Family selection over a streamed quantile sketch.

    Bridges the paper's subsampled-KS procedure (which wants a raw sample)
    to the streaming world (which has a mergeable sketch): the sample is
    the deterministic :func:`quantile_grid_sample` of the sketch, so the
    result depends only on the sketch state, the ``rng`` stream and the
    grid size.
    """
    sample = quantile_grid_sample(sketch.quantile, n=n_grid)
    return select_distribution(
        sample,
        rng,
        families=families,
        n_subsamples=n_subsamples,
        subsample_size=subsample_size,
    )
