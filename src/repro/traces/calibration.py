"""Age-mixing calibration: making population statistics match cohort laws.

Host resources are frozen at creation, so the statistic of the *active
population* at time T is an age-mixture of cohort statistics and lags behind
the technology trend (old hosts drag the average down — this is exactly why
the paper's Fig 2 growth is "less than would be expected from Moore's law").

The paper's laws describe the *population*.  To make the synthetic trace's
population match them, cohort resources must run *ahead* of the population
law.  For a law ``a·e^{bt}`` the population value is

    pop(T) = a·e^{bT} · E_active[e^{−b·age}],

so evaluating the cohort law at ``creation + δ(b)`` with

    δ(b) = −ln(E_active[e^{−b·age}]) / b

makes the population match in expectation.  :class:`CohortCalibration`
computes these expectations from the actual simulated arrival/lifetime
schedule (pooled over the observation window), plus the between-cohort
variance correction needed for the variance laws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.laws import ExponentialLaw
from repro.core.ratios import RatioChain
from repro.traces.arrivals import ArrivalSchedule, SurvivalFn
from repro.timeutil import EPOCH_YEAR


@dataclass
class CohortCalibration:
    """Pooled age-mixture moments of the active population.

    Parameters
    ----------
    ages:
        Flattened host ages (years) observed at the sample dates.
    weights:
        Matching expected-count weights (arrivals × survival).
    sample_times:
        Epoch-relative times of the pooled samples (one per age entry).
    """

    ages: np.ndarray
    weights: np.ndarray
    sample_times: np.ndarray

    @classmethod
    def from_schedule(
        cls,
        schedule: ArrivalSchedule,
        survival: SurvivalFn,
        window_start: float,
        window_end: float,
        age_cap_years: float = 4.0,
        n_samples: int = 24,
    ) -> "CohortCalibration":
        """Build the pooled age distribution over an observation window.

        Ages beyond ``age_cap_years`` are excluded: with a k < 1 Weibull the
        exponential moments are dominated by a handful of very old cohorts,
        which makes the raw estimate unstable, and such hosts are rare in
        the real population anyway.
        """
        sample_dates = np.linspace(window_start, window_end, n_samples)
        ages_list, weights_list, times_list = [], [], []
        for when in sample_dates:
            ages = when - schedule.cohort_times
            valid = (ages >= 0) & (ages <= age_cap_years)
            if not np.any(valid):
                continue
            alive = survival(ages[valid], schedule.cohort_times[valid])
            w = schedule.arrivals[valid] * alive
            ages_list.append(ages[valid])
            weights_list.append(w)
            times_list.append(np.full(valid.sum(), when - EPOCH_YEAR))
        if not ages_list:
            raise ValueError("no active cohorts inside the observation window")
        return cls(
            ages=np.concatenate(ages_list),
            weights=np.concatenate(weights_list),
            sample_times=np.concatenate(times_list),
        )

    def mean_age(self) -> float:
        """Weight-averaged age of active hosts (years)."""
        return float(np.average(self.ages, weights=self.weights))

    def lag_factor(self, b: float) -> float:
        """``E[e^{−b·age}]`` weighted by host count *and* the law's own size.

        Weighting by ``e^{b·t}`` (the law's value at each pooled sample
        time) makes the resulting δ(b) cancel age-mixing exactly for the
        pooled weighted average of an ``a·e^{bt}`` law, not just
        approximately: later sample dates, where the law is larger, count
        for more of the pooled error.
        """
        law_size = np.exp(b * self.sample_times)
        return float(
            np.average(np.exp(-b * self.ages), weights=self.weights * law_size)
        )

    def delta(self, b: float) -> float:
        """Time lead δ(b) such that cohort law at ``t+δ`` matches population.

        The ``b → 0`` limit is the mean age.
        """
        if abs(b) < 1e-9:
            return self.mean_age()
        return float(-np.log(self.lag_factor(b)) / b)

    def lead_law(self, law: ExponentialLaw) -> ExponentialLaw:
        """The cohort-side law whose age-mixture reproduces ``law``."""
        return law.shifted(self.delta(law.b))

    def variance_shrink(
        self, mean_law: ExponentialLaw, variance_law: ExponentialLaw
    ) -> float:
        """Fraction of the population variance carried *within* cohorts.

        The population variance decomposes as within-cohort plus
        between-cohort (the spread of cohort means across ages).  Cohort
        variances must therefore be shrunk by this factor so the mixture
        reproduces the target variance law.  Clipped to [0.1, 1].
        """
        lead_mean = self.lead_law(mean_law)
        cohort_means = lead_mean.at(self.sample_times - self.ages)
        pop_means = mean_law.at(self.sample_times)
        between = float(
            np.average((cohort_means - pop_means) ** 2, weights=self.weights)
        )
        target_var = float(np.average(variance_law.at(self.sample_times), weights=self.weights))
        if target_var <= 0:
            return 1.0
        return float(np.clip(1.0 - between / target_var, 0.1, 1.0))

    def chain_time_shift(self, chain: "RatioChain", max_shift: float = 4.0) -> float:
        """Scalar time lead δ for a ratio chain's *shares*.

        Unlike the scalar laws, a chain's class shares are ratios of
        exponentials (they renormalise per cohort), so the clean per-law
        ``δ(b)`` algebra does not apply.  Instead we pick the single shift δ
        at which the age-mixture of cohort *mean class values* reproduces
        the chain's population mean, pooled over the observation window.
        Because the chain mean is smooth and monotone in time, this single
        shift also brings the individual class shares close (the residual
        is second order in the age spread).
        """
        from scipy.optimize import brentq

        base = np.asarray(chain.weights(0.0))
        growth = np.asarray(chain.class_growth_exponents())
        values = np.asarray(chain.class_values, dtype=float)

        def mean_at(times: np.ndarray) -> np.ndarray:
            weights = base * np.exp(np.outer(times, growth))
            probs = weights / weights.sum(axis=1, keepdims=True)
            return probs @ values

        target = float(np.average(mean_at(self.sample_times), weights=self.weights))
        creation_times = self.sample_times - self.ages

        def gap(delta: float) -> float:
            mixed = float(
                np.average(mean_at(creation_times + delta), weights=self.weights)
            )
            return mixed - target

        if gap(0.0) >= 0.0:
            return 0.0  # population already at or ahead of target
        if gap(max_shift) <= 0.0:
            return max_shift  # cannot catch up within the allowed lead
        return float(brentq(gap, 0.0, max_shift, xtol=1e-6))

    def split(self, at_time: "float | None" = None) -> tuple["CohortCalibration", "CohortCalibration"]:
        """Split the pooled samples into early/late halves by sample time.

        Used to build creation-date-dependent shifts: the pooled-over-window
        shift over-leads the window start (where the population is young)
        and under-leads the end.
        """
        split = float(np.median(self.sample_times)) if at_time is None else at_time
        early = self.sample_times <= split
        if not np.any(early) or np.all(early):
            raise ValueError("split time leaves an empty half")
        return (
            CohortCalibration(
                ages=self.ages[early],
                weights=self.weights[early],
                sample_times=self.sample_times[early],
            ),
            CohortCalibration(
                ages=self.ages[~early],
                weights=self.weights[~early],
                sample_times=self.sample_times[~early],
            ),
        )

    def mean_creation_time(self) -> float:
        """Weight-averaged creation time (epoch-relative) of active hosts."""
        return float(
            np.average(self.sample_times - self.ages, weights=self.weights)
        )

    def chain_shift_anchors(
        self, chain: "RatioChain"
    ) -> tuple[np.ndarray, np.ndarray]:
        """(creation_times, shifts) anchors for per-cohort chain shifts.

        Each half-window contributes one anchor: the shift solved on that
        half, placed at the half's mean host creation time.  Interpolating
        between the anchors (and clamping outside) gives each cohort a shift
        appropriate to the dates at which it is actually observed.
        """
        early, late = self.split()
        anchors_t = np.array(
            [early.mean_creation_time(), late.mean_creation_time()]
        )
        anchors_d = np.array(
            [early.chain_time_shift(chain), late.chain_time_shift(chain)]
        )
        return anchors_t, anchors_d

    def shifted_chain_weights(
        self, chain: "RatioChain", creation_times: np.ndarray
    ) -> np.ndarray:
        """Per-host class weights at ``creation + shift(creation)``.

        Returns an (n_hosts, n_classes) matrix of unnormalised weights ready
        for row-wise inverse-CDF sampling.
        """
        anchors_t, anchors_d = self.chain_shift_anchors(chain)
        base = np.asarray(chain.weights(0.0))
        growth = np.asarray(chain.class_growth_exponents())
        creation = np.asarray(creation_times, dtype=float)
        deltas = np.interp(creation, anchors_t, anchors_d)
        return base * np.exp((creation + deltas)[:, None] * growth[None, :])
