"""Host lifetime model: Weibull with creation-date decay (Figs 1 and 3).

The paper fits host lifetimes to Weibull(k = 0.58, λ = 135 d) — a heavily
front-loaded distribution (median 71 d, mean ≈ 200 d) with decreasing dropout
rate — and separately observes (Fig 3) that hosts created later have shorter
average lifetimes, and that better-equipped hosts tend to die younger.

We model the Weibull *scale* as decaying exponentially in the creation date,
with an optional multiplicative "quality" effect, so that the pooled fit over
the observation window recovers the paper's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timeutil import DAYS_PER_YEAR


@dataclass(frozen=True)
class LifetimeModel:
    """Weibull lifetimes whose scale decays with the host creation date."""

    #: Weibull shape ``k`` (constant across cohorts).
    shape: float = 0.58
    #: Weibull scale λ in *days* for hosts created at calendar year 2006.
    scale_2006_days: float = 175.0
    #: Exponential decay of λ per creation year after 2006.
    decay_per_year: float = 0.18
    #: λ multiplier = ``1 + effect * (0.5 - quality)`` for quality in [0, 1].
    quality_effect: float = 0.2

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale_2006_days <= 0:
            raise ValueError("Weibull parameters must be positive")
        if not 0 <= self.quality_effect < 2:
            raise ValueError("quality_effect must be in [0, 2)")

    def scale_days(self, creation_year: "float | np.ndarray") -> "float | np.ndarray":
        """Weibull scale (days) for hosts created at ``creation_year``."""
        t = np.asarray(creation_year, dtype=float) - 2006.0
        scale = self.scale_2006_days * np.exp(-self.decay_per_year * t)
        if np.ndim(creation_year) == 0:
            return float(scale)
        return scale

    def mean_days(self, creation_year: float) -> float:
        """Expected lifetime (days) of a cohort, quality-averaged."""
        from math import gamma

        return self.scale_days(creation_year) * gamma(1 + 1 / self.shape)

    def sample_days(
        self,
        creation_year: np.ndarray,
        quality: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw one lifetime (days) per host.

        ``quality`` is each host's resource-quality percentile in [0, 1];
        higher quality shortens life (§V-B's empirical observation).
        """
        creation = np.asarray(creation_year, dtype=float)
        q = np.asarray(quality, dtype=float)
        if creation.shape != q.shape:
            raise ValueError("creation_year and quality must align")
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quality percentiles must lie in [0, 1]")
        scale = self.scale_days(creation) * (1 + self.quality_effect * (0.5 - q))
        return scale * rng.weibull(self.shape, size=creation.shape)

    def survival(
        self,
        age_years: "float | np.ndarray",
        creation_year: "float | np.ndarray",
    ) -> "float | np.ndarray":
        """P(lifetime > age) for hosts created at ``creation_year``.

        Ages are in years (the arrival solver's natural unit); negative ages
        (host not yet created) survive with probability 1.
        """
        age_days = np.maximum(np.asarray(age_years, dtype=float), 0.0) * DAYS_PER_YEAR
        scale = np.asarray(self.scale_days(creation_year), dtype=float)
        value = np.exp(-((age_days / scale) ** self.shape))
        if np.ndim(age_years) == 0 and np.ndim(creation_year) == 0:
            return float(value)
        return value
