"""Trace persistence: CSV with optional gzip compression.

The real SETI@home host files are flat text tables; we keep the same spirit
so traces can be inspected, diffed and versioned.  A header row names the
columns; booleans are stored as 0/1 and labels as raw strings.
"""

from __future__ import annotations

import csv
import gzip
import io
from dataclasses import fields
from pathlib import Path

import numpy as np

from repro.traces.dataset import TraceDataset

#: Column order in the CSV (matches the TraceDataset fields).
_COLUMNS = [f.name for f in fields(TraceDataset)]
_BOOL_COLUMNS = {"censored", "corrupt"}
_LABEL_COLUMNS = {"cpu_family", "os_name", "gpu_type"}
_INT_COLUMNS = {"host_id"}


def write_trace_csv(trace: TraceDataset, path: "str | Path") -> None:
    """Write a trace to ``path``; ``.gz`` suffix enables gzip compression."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        columns = []
        for name in _COLUMNS:
            column = getattr(trace, name)
            if name in _BOOL_COLUMNS:
                columns.append(column.astype(int).astype(str))
            elif name in _INT_COLUMNS:
                columns.append(column.astype(np.int64).astype(str))
            elif name in _LABEL_COLUMNS:
                columns.append(column.astype(str))
            else:
                columns.append(np.char.mod("%.10g", column.astype(float)))
        for row in zip(*columns):
            writer.writerow(row)


def read_trace_csv(path: "str | Path") -> TraceDataset:
    """Read a trace written by :func:`write_trace_csv`.

    Raises
    ------
    ValueError
        If the header does not match the expected schema.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _COLUMNS:
            raise ValueError(
                f"unexpected trace header {header!r}; expected {_COLUMNS!r}"
            )
        rows = list(reader)

    if rows:
        table = {name: [row[i] for row in rows] for i, name in enumerate(_COLUMNS)}
    else:
        table = {name: [] for name in _COLUMNS}

    arrays: dict[str, np.ndarray] = {}
    for name in _COLUMNS:
        raw = table[name]
        if name in _BOOL_COLUMNS:
            arrays[name] = np.array([v == "1" for v in raw], dtype=bool)
        elif name in _INT_COLUMNS:
            arrays[name] = np.array(raw, dtype=np.int64)
        elif name in _LABEL_COLUMNS:
            arrays[name] = np.array(raw, dtype=object)
        else:
            arrays[name] = np.array(raw, dtype=float)
    return TraceDataset(**arrays)


def trace_to_csv_text(trace: TraceDataset) -> str:
    """Render a trace as CSV text (useful for docs and round-trip tests)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_COLUMNS)
    for i in range(len(trace)):
        row = []
        for name in _COLUMNS:
            value = getattr(trace, name)[i]
            if name in _BOOL_COLUMNS:
                row.append(str(int(value)))
            elif name in _INT_COLUMNS:
                row.append(str(int(value)))
            elif name in _LABEL_COLUMNS:
                row.append(str(value))
            else:
                row.append(f"{float(value):.10g}")
        writer.writerow(row)
    return buffer.getvalue()
