"""Configuration of the synthetic trace world.

Defaults are calibrated so that the *observation window* (Jan 2006 – Sep
2010) reproduces the paper's published aggregates at a configurable scale:
the paper's SETI@home population fluctuates between roughly 300 k and 350 k
active hosts; ``scale`` multiplies that target (the default 0.02 gives
≈ 6.5 k active hosts, which keeps analyses fast while leaving thousands of
hosts per snapshot).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import ModelParameters

#: Calendar-year bounds of the paper's observation window.
OBSERVATION_START = 2006.0
OBSERVATION_END = 2010.667  # September 1, 2010


@dataclass(frozen=True)
class TraceConfig:
    """All knobs of the synthetic SETI@home-like world."""

    # -- simulation window -------------------------------------------------
    #: Trace begins before the observation window so 2006 snapshots contain
    #: hosts of realistic ages.
    start: float = 2004.0
    #: Trace end (records are censored here), just past the validation date.
    end: float = 2010.75

    # -- population size ---------------------------------------------------
    #: Fraction of the paper's population to simulate.
    scale: float = 0.02
    #: Mid-band active host count at full scale (paper: 300–350 k).
    target_active_base: float = 325_000.0
    #: Seasonal wobble amplitude at full scale.
    target_active_amplitude: float = 25_000.0
    #: Wobble period in years.
    target_active_period: float = 2.5
    #: Years over which the pre-2006 population ramps up from near zero.
    ramp_years: float = 2.0

    # -- lifetimes (Fig 1 / Fig 3) ------------------------------------------
    #: Weibull shape k; the paper fits k = 0.58.
    lifetime_shape: float = 0.58
    #: Weibull scale (days) for hosts created at the 2006 epoch.  Chosen so
    #: that the arrival-weighted mixture over 2006-2010 cohorts reproduces
    #: the paper's pooled fit (λ ≈ 135 d, mean 192 d, median 71 d).
    lifetime_scale_2006_days: float = 175.0
    #: Exponential decay rate of the lifetime scale per year of creation
    #: date (Fig 3: later hosts live shorter lives).
    lifetime_decay_per_year: float = 0.18
    #: Strength of the "better hosts die younger" effect (§V-B): lifetime
    #: scale is multiplied by ``1 + eta * (0.5 - quality_percentile)``.
    lifetime_quality_effect: float = 0.2

    # -- resource realism knobs ---------------------------------------------
    #: Ground-truth population laws the world evolves along.
    params: ModelParameters = field(default_factory=ModelParameters.paper_reference)
    #: Fraction of hosts with non-power-of-two core counts (paper: < 0.3 %).
    nonpow2_core_fraction: float = 0.003
    #: Fraction of hosts carrying intermediate per-core-memory values such
    #: as 1280/1792 MB (the values §V-E discards from the simplified model).
    intermediate_percore_fraction: float = 0.10
    #: Per-core-memory truncation used for the canonical classes (2048 MB is
    #: §V-E's simplified value set; the trace adds a small ">2048MB" band on
    #: top via ``high_percore_fraction`` to populate Fig 7's last band).
    percore_max_mb: float = 2048.0
    #: Fraction of (few-core) hosts given 4096 MB per core.
    high_percore_fraction: float = 0.02
    #: Mild negative coupling between core count and per-core memory: the
    #: memory-selection uniform is shifted by ``-x * (log2(cores) - 1)``.
    #: Under exact independence the cores/total-memory correlation is
    #: mechanically ≈ 0.79; the paper's observed 0.606 implies many-core
    #: hosts carry somewhat less memory per core.
    core_memory_anticorrelation: float = 0.08
    #: Boost applied to the latent memory↔speed correlations before the
    #: per-core-memory classes discretise them.  Snapping to the six
    #: canonical classes attenuates a latent correlation by ≈ 0.75–0.8, so
    #: reproducing Table III's measured 0.250/0.306 needs a stronger latent
    #: coupling.
    latent_memory_speed_boost: float = 1.3
    #: Fraction of hosts in the mid-distribution benchmark "spike" (Fig 8).
    speed_spike_fraction: float = 0.15
    #: Spike centre as a fraction of the cohort mean speed.
    speed_spike_location: float = 0.9
    #: Spike width as a fraction of the cohort speed std.
    speed_spike_width: float = 0.15
    #: Coupling between host quality (lifetime) and speed, in [0, 1).
    speed_quality_coupling: float = 0.15
    #: Fraction of hosts whose reported available disk is rounded to one
    #: significant digit (produces the right-side spikes of Fig 9).
    disk_round_fraction: float = 0.15
    #: Bounds of the uniform available/total disk fraction (§V-C notes the
    #: available fraction of total disk is roughly uniform).
    disk_fraction_low: float = 0.02
    disk_fraction_high: float = 0.98
    #: Fraction of hosts with corrupted measurements (paper discards 0.12 %).
    corrupt_fraction: float = 0.0012

    # -- platform metadata ---------------------------------------------------
    #: Extra years added to creation time when sampling platform composition
    #: (compensates population-vs-cohort lag for Tables I/II shares).
    platform_lead_years: float = 0.7

    # -- calibration ---------------------------------------------------------
    #: Ages above this cap are excluded from the age-mixing moment
    #: calibration (heavy Weibull tails make the raw moments unstable).
    calibration_age_cap_years: float = 4.0

    # -- reproducibility ------------------------------------------------------
    seed: int = 20110611

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("trace end must come after start")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not 0 <= self.corrupt_fraction < 1:
            raise ValueError("corrupt_fraction must be in [0, 1)")
        if not 0 <= self.speed_quality_coupling < 1:
            raise ValueError("speed_quality_coupling must be in [0, 1)")
        if not 0 < self.disk_fraction_low < self.disk_fraction_high <= 1:
            raise ValueError("disk fraction bounds must satisfy 0 < low < high <= 1")

    def target_active(self, when: float) -> float:
        """Target number of active hosts at calendar year ``when``.

        A sinusoidal band (300–350 k at full scale) with a linear ramp from
        the trace start so the pre-2006 warm-up population builds up
        gradually.
        """
        import math

        band = self.target_active_base + self.target_active_amplitude * math.sin(
            2 * math.pi * (when - OBSERVATION_START) / self.target_active_period
        )
        if when < OBSERVATION_START:
            ramp_start = OBSERVATION_START - self.ramp_years
            ramp = (when - ramp_start) / self.ramp_years
            band *= min(max(ramp, 0.02), 1.0)
        return band * self.scale
