"""Synthesising the SETI@home-like host trace.

This is the offline substitute for the paper's public trace files (see
DESIGN.md §2).  The generator:

1. solves a monthly arrival schedule so the active population tracks the
   300–350 k band (scaled),
2. draws per-host lifetimes from the creation-date-decaying Weibull model,
3. draws per-host resources *at creation* from the population trend laws,
   led by the age-mixing calibration of :mod:`repro.traces.calibration` so
   that active-population statistics match the paper's published curves,
4. adds the messy-reality features the paper reports: non-power-of-two core
   counts, intermediate per-core-memory values, the mid-distribution
   benchmark spike (Fig 8), rounded disk sizes (Fig 9 spikes), platform/OS
   labels (Tables I/II), GPU adoption (Table VII, Fig 10) and a 0.12 %
   corruption rate (§V-B).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _sps

from repro.core.correlation import CorrelatedNormalSampler
from repro.core.ratios import RatioChain
from repro.hosts import platforms as _platforms
from repro.timeutil import DAYS_PER_YEAR, EPOCH_YEAR
from repro.traces.arrivals import solve_arrival_schedule
from repro.traces.calibration import CohortCalibration
from repro.traces.config import OBSERVATION_END, OBSERVATION_START, TraceConfig
from repro.traces.dataset import TraceDataset
from repro.traces.lifetimes import LifetimeModel

#: Non-power-of-two core counts present in the real data (< 0.3 % of hosts).
NONPOW2_CORE_VALUES = np.array([3.0, 6.0, 12.0])
NONPOW2_CORE_PROBS = np.array([0.6, 0.3, 0.1])

#: Intermediate per-core-memory values the paper's simplified model discards.
INTERMEDIATE_PERCORE_MB = (1280.0, 1792.0)


def mix_rho(shared: np.ndarray, own: np.ndarray, rho: float) -> np.ndarray:
    """Blend a shared and an individual standard normal to correlation ``rho``.

    Two variates built this way from the same ``shared`` component have
    pairwise correlation ``rho`` while keeping N(0, 1) margins.
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    return np.sqrt(rho) * shared + np.sqrt(1.0 - rho) * own


class SyntheticTraceGenerator:
    """Builds a :class:`~repro.traces.dataset.TraceDataset` from a config."""

    def __init__(self, config: "TraceConfig | None" = None):
        self._config = config if config is not None else TraceConfig()

    @property
    def config(self) -> TraceConfig:
        """The world configuration."""
        return self._config

    def generate(
        self, rng: "np.random.Generator | None" = None
    ) -> TraceDataset:
        """Synthesise the full trace.

        Deterministic given the config seed; pass an explicit ``rng`` to
        take over the stream instead (batch entry points accept a
        caller-owned generator everywhere, so composed experiments can
        share one seeded stream).
        """
        cfg = self._config
        if rng is None:
            rng = np.random.default_rng(cfg.seed)
        lifetime_model = LifetimeModel(
            shape=cfg.lifetime_shape,
            scale_2006_days=cfg.lifetime_scale_2006_days,
            decay_per_year=cfg.lifetime_decay_per_year,
            quality_effect=cfg.lifetime_quality_effect,
        )

        schedule = solve_arrival_schedule(
            cfg.start, cfg.end, cfg.target_active, lifetime_model.survival
        )
        calibration = CohortCalibration.from_schedule(
            schedule,
            lifetime_model.survival,
            window_start=OBSERVATION_START,
            window_end=min(cfg.end, OBSERVATION_END),
            age_cap_years=cfg.calibration_age_cap_years,
        )

        # ---- arrivals, lifetimes --------------------------------------
        counts = rng.poisson(schedule.arrivals)
        n = int(counts.sum())
        created = np.repeat(schedule.cohort_times, counts)
        created = created + (rng.random(n) - 0.5) * schedule.cohort_width
        quality = rng.random(n)
        lifetime_days = lifetime_model.sample_days(created, quality, rng)
        death = created + lifetime_days / DAYS_PER_YEAR
        last_contact = np.minimum(death, cfg.end)
        censored = death > cfg.end

        # ---- resources (frozen at creation, age-lead calibrated) -------
        t_created = created - EPOCH_YEAR
        cores, expected_log2_cores = self._sample_cores(t_created, rng, calibration)

        latent = cfg.params.correlation.copy()
        latent[0, 1] = latent[1, 0] = min(latent[0, 1] * cfg.latent_memory_speed_boost, 0.99)
        latent[0, 2] = latent[2, 0] = min(latent[0, 2] * cfg.latent_memory_speed_boost, 0.99)
        correlated = CorrelatedNormalSampler(latent).sample(n, rng)
        z_mem, z_whet, z_dhry = correlated[:, 0], correlated[:, 1], correlated[:, 2]

        percore_mb = self._sample_percore_memory(
            t_created, z_mem, cores, expected_log2_cores, rng, calibration
        )
        memory_mb = percore_mb * cores

        whetstone, dhrystone = self._sample_speeds(
            t_created, z_whet, z_dhry, quality, rng, calibration
        )
        disk_avail, disk_total = self._sample_disk(t_created, rng, calibration)

        # ---- platform metadata -----------------------------------------
        cpu_family, os_name = self._sample_platforms(created, rng)
        gpu_uniform = rng.random(n)
        gpu_type, gpu_memory = self._sample_gpus(created, rng)

        # ---- measurement corruption --------------------------------------
        corrupt = rng.random(n) < cfg.corrupt_fraction
        self._inject_corruption(
            corrupt, rng, cores, memory_mb, dhrystone, whetstone, disk_avail
        )

        return TraceDataset(
            host_id=np.arange(n, dtype=np.int64),
            created=created,
            last_contact=last_contact,
            censored=censored,
            cores=cores,
            memory_mb=memory_mb,
            dhrystone=dhrystone,
            whetstone=whetstone,
            disk_avail_gb=disk_avail,
            disk_total_gb=disk_total,
            cpu_family=cpu_family,
            os_name=os_name,
            gpu_uniform=gpu_uniform,
            gpu_type=gpu_type,
            gpu_memory_mb=gpu_memory,
            corrupt=corrupt,
        )

    # ------------------------------------------------------------------
    # resource samplers
    # ------------------------------------------------------------------

    @staticmethod
    def _pick_classes(
        weights: np.ndarray, values: np.ndarray, u: np.ndarray
    ) -> np.ndarray:
        """Row-wise inverse-CDF pick: weights (n, k), uniforms u (n,)."""
        probs = weights / weights.sum(axis=1, keepdims=True)
        cumulative = np.cumsum(probs, axis=1)
        cumulative[:, -1] = 1.0
        idx = (u[:, None] > cumulative).sum(axis=1)
        return values[np.clip(idx, 0, values.size - 1)]

    def _chain_weights(
        self,
        chain: RatioChain,
        t_created: np.ndarray,
        calibration: CohortCalibration,
    ) -> np.ndarray:
        """Calibrated per-host class weights for a ratio chain."""
        return calibration.shifted_chain_weights(chain, t_created)

    def _sample_cores(
        self,
        t_created: np.ndarray,
        rng: np.random.Generator,
        calibration: CohortCalibration,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Returns (cores, expected_log2_cores) per host.

        The expectation is against each host's own cohort distribution; the
        per-core-memory sampler needs it to centre the core/memory
        anti-correlation shift so the memory marginal stays unbiased.
        """
        chain = self._config.params.core_chain
        weights = self._chain_weights(chain, t_created, calibration)
        values = np.asarray(chain.class_values, dtype=float)
        probs = weights / weights.sum(axis=1, keepdims=True)
        expected_log2 = probs @ np.log2(values)
        cores = self._pick_classes(weights, values, rng.random(t_created.size))
        # A sliver of real hosts report 3/6/12 cores (§V-D ignores them).
        odd = rng.random(t_created.size) < self._config.nonpow2_core_fraction
        if np.any(odd):
            cores[odd] = rng.choice(
                NONPOW2_CORE_VALUES, size=int(odd.sum()), p=NONPOW2_CORE_PROBS
            )
        return cores, expected_log2

    def _sample_percore_memory(
        self,
        t_created: np.ndarray,
        z_mem: np.ndarray,
        cores: np.ndarray,
        expected_log2_cores: np.ndarray,
        rng: np.random.Generator,
        calibration: CohortCalibration,
    ) -> np.ndarray:
        cfg = self._config
        chain = cfg.params.percore_memory_chain.truncated(cfg.percore_max_mb)
        weights = self._chain_weights(chain, t_created, calibration)
        values = np.asarray(chain.class_values, dtype=float)
        u = CorrelatedNormalSampler.normals_to_uniforms(z_mem)
        # Many-core hosts carry slightly less memory per core (the paper's
        # cores/memory correlation of 0.606 is below the ≈ 0.79 that exact
        # independence of cores and per-core memory would imply).  The shift
        # is centred on each cohort's expected log2(cores) so the per-core
        # memory marginal stays unbiased.
        u = np.clip(
            u
            - cfg.core_memory_anticorrelation
            * (np.log2(cores) - expected_log2_cores),
            1e-9,
            1.0 - 1e-9,
        )
        percore = self._pick_classes(weights, values, u)

        # Intermediate values (1280/1792 MB) that §V-E's simplified value
        # set discards; they sit between the canonical classes.
        intermediate = rng.random(t_created.size) < cfg.intermediate_percore_fraction
        lower, upper = INTERMEDIATE_PERCORE_MB
        take_low = intermediate & (percore == 1024.0)
        take_mid = intermediate & (percore == 1536.0)
        take_high = intermediate & (percore == 2048.0)
        percore = percore.copy()
        percore[take_low] = lower
        percore[take_mid] = np.where(rng.random(int(take_mid.sum())) < 0.5, lower, upper)
        percore[take_high] = upper

        # A thin ">2048 MB per core" band (Fig 7's top band): memory-rich
        # workstations, restricted to few-core hosts so totals stay in the
        # plausible 2010 range.
        high = (rng.random(t_created.size) < cfg.high_percore_fraction) & (cores <= 4)
        percore[high] = 4096.0
        return percore

    def _sample_speeds(
        self,
        t_created: np.ndarray,
        z_whet: np.ndarray,
        z_dhry: np.ndarray,
        quality: np.ndarray,
        rng: np.random.Generator,
        calibration: CohortCalibration,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self._config
        params = cfg.params

        # Blend in the host-quality normal so better hosts are faster (and,
        # through the lifetime model, die younger — §V-B's observation).
        kappa = cfg.speed_quality_coupling
        z_quality = _sps.norm.ppf(np.clip(quality, 1e-9, 1 - 1e-9))
        mix = np.sqrt(1 - kappa**2)
        z_whet = mix * z_whet + kappa * z_quality
        z_dhry = mix * z_dhry + kappa * z_quality

        spike = rng.random(t_created.size) < cfg.speed_spike_fraction
        # The spike sits below the mean, so the main component is scaled up
        # slightly to keep the population mean on the law.
        p, loc = cfg.speed_spike_fraction, cfg.speed_spike_location
        main_scale = (1 - p * loc) / (1 - p)
        # Spike draws carry the same whet/dhry coupling as the main body so
        # the population correlation stays at the Table III level.
        rho = float(params.correlation[1, 2])
        z_spike_shared = rng.standard_normal(t_created.size)
        z_spikes = {
            "whet": mix_rho(z_spike_shared, rng.standard_normal(t_created.size), rho),
            "dhry": mix_rho(z_spike_shared, rng.standard_normal(t_created.size), rho),
        }

        def one_benchmark(mean_law, var_law, z_main, z_spike):
            lead_mean = calibration.lead_law(mean_law)
            shrink = calibration.variance_shrink(mean_law, var_law)
            lead_var = calibration.lead_law(var_law).scaled(shrink)
            mean = lead_mean.at(t_created)
            std = np.sqrt(lead_var.at(t_created))
            values = mean * main_scale + std * z_main
            spike_values = mean * loc + std * cfg.speed_spike_width * z_spike
            values = np.where(spike, spike_values, values)
            return np.maximum(values, 1.0)

        whet = one_benchmark(
            params.whetstone_mean, params.whetstone_variance, z_whet, z_spikes["whet"]
        )
        dhry = one_benchmark(
            params.dhrystone_mean, params.dhrystone_variance, z_dhry, z_spikes["dhry"]
        )
        return whet, dhry

    def _sample_disk(
        self,
        t_created: np.ndarray,
        rng: np.random.Generator,
        calibration: CohortCalibration,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self._config
        lead_mean = calibration.lead_law(cfg.params.disk_mean)
        shrink = calibration.variance_shrink(cfg.params.disk_mean, cfg.params.disk_variance)
        lead_var = calibration.lead_law(cfg.params.disk_variance).scaled(shrink)

        mean = lead_mean.at(t_created)
        variance = lead_var.at(t_created)
        sigma_sq = np.log1p(variance / (mean * mean))
        mu = np.log(mean) - sigma_sq / 2
        avail = np.exp(mu + np.sqrt(sigma_sq) * rng.standard_normal(t_created.size))

        # Reported sizes cluster on round numbers (Fig 9's right-side spikes).
        rounded = rng.random(t_created.size) < cfg.disk_round_fraction
        if np.any(rounded):
            magnitude = 10.0 ** np.floor(np.log10(avail[rounded]))
            avail[rounded] = np.maximum(
                np.round(avail[rounded] / magnitude) * magnitude, 0.1
            )

        # Available space is a uniform fraction of total (§V-C).
        fraction = rng.uniform(
            cfg.disk_fraction_low, cfg.disk_fraction_high, size=t_created.size
        )
        total = avail / fraction
        return avail, total

    # ------------------------------------------------------------------
    # metadata samplers
    # ------------------------------------------------------------------

    def _sample_platforms(
        self, created: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self._config
        n = created.size
        cpu = np.empty(n, dtype=object)
        os_name = np.empty(n, dtype=object)
        # Bucket hosts by creation month so composition lookups vectorise.
        months = np.floor((created - cfg.start) * 12).astype(int)
        for month in np.unique(months):
            in_bucket = months == month
            when = cfg.start + (month + 0.5) / 12 + cfg.platform_lead_years
            cpu_probs = _platforms.composition_at(_platforms.CPU_SHARES_BY_YEAR, when)
            os_probs = _platforms.composition_at(_platforms.OS_SHARES_BY_YEAR, when)
            size = int(in_bucket.sum())
            cpu[in_bucket] = _platforms.sample_labels(
                _platforms.CPU_FAMILIES, cpu_probs, size, rng
            )
            os_name[in_bucket] = _platforms.sample_labels(
                _platforms.OS_NAMES, os_probs, size, rng
            )
        # PowerPC machines run Mac OS X, whatever the OS table said.
        powerpc = np.array([family in _platforms.MAC_CPU_FAMILIES for family in cpu])
        os_name[powerpc] = "Mac OS X"
        return cpu, os_name

    @staticmethod
    def _extrapolate_pmf(pmf0: np.ndarray, pmf1: np.ndarray, factor: float) -> np.ndarray:
        """Continue the pmf0→pmf1 trend by ``factor`` more steps, clipped."""
        extended = np.clip(pmf1 + factor * (pmf1 - pmf0), 0.0, None)
        return extended / extended.sum()

    def _sample_gpus(
        self, created: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """GPU type and memory for every host (used only once adopted).

        Anchored at the published Sep 2009 / Sep 2010 distributions, with a
        short extrapolated third anchor so that the *age-mixed active
        population* (not the creation cohort) reproduces the published
        values at the second anchor — the same lead principle the resource
        calibration uses.
        """
        cfg = self._config
        n = created.size
        anchors = sorted(_platforms.GPU_SHARES_BY_DATE)
        t0, t1 = anchors[0], anchors[-1]
        t2 = t1 + cfg.platform_lead_years
        extend = cfg.platform_lead_years / (t1 - t0)

        shares0 = np.array(_platforms.GPU_SHARES_BY_DATE[t0], dtype=float)
        shares1 = np.array(_platforms.GPU_SHARES_BY_DATE[t1], dtype=float)
        shares0 /= shares0.sum()
        shares1 /= shares1.sum()
        shares2 = self._extrapolate_pmf(shares0, shares1, extend)
        pmf0 = np.array(_platforms.GPU_MEMORY_PMF_BY_DATE[t0], dtype=float)
        pmf1 = np.array(_platforms.GPU_MEMORY_PMF_BY_DATE[t1], dtype=float)
        pmf2 = self._extrapolate_pmf(pmf0, pmf1, extend)

        when = np.clip(created + cfg.platform_lead_years, t0, t2)
        grid = np.array([t0, t1, t2])
        type_probs = np.column_stack(
            [np.interp(when, grid, [shares0[i], shares1[i], shares2[i]])
             for i in range(shares0.size)]
        )
        mem_probs = np.column_stack(
            [np.interp(when, grid, [pmf0[i], pmf1[i], pmf2[i]])
             for i in range(pmf0.size)]
        )
        type_probs /= type_probs.sum(axis=1, keepdims=True)
        mem_probs /= mem_probs.sum(axis=1, keepdims=True)

        type_values = np.arange(len(_platforms.GPU_TYPES))
        type_idx = self._pick_classes(type_probs, type_values.astype(float), rng.random(n))
        gpu_type = np.asarray(_platforms.GPU_TYPES, dtype=object)[type_idx.astype(int)]

        mem_values = np.asarray(_platforms.GPU_MEMORY_CLASSES_MB, dtype=float)
        gpu_memory = self._pick_classes(mem_probs, mem_values, rng.random(n))
        return gpu_type, gpu_memory

    # ------------------------------------------------------------------
    # corruption
    # ------------------------------------------------------------------

    @staticmethod
    def _inject_corruption(
        corrupt: np.ndarray,
        rng: np.random.Generator,
        cores: np.ndarray,
        memory_mb: np.ndarray,
        dhrystone: np.ndarray,
        whetstone: np.ndarray,
        disk_avail: np.ndarray,
    ) -> None:
        """Blow up one random measurement per corrupted host, in place.

        The injected values all exceed the §V-B sanity bounds, so the
        :class:`~repro.hosts.filters.SanityFilter` should discard exactly
        these hosts.
        """
        indices = np.flatnonzero(corrupt)
        if indices.size == 0:
            return
        which = rng.integers(0, 5, size=indices.size)
        u = rng.random(indices.size)
        cores[indices[which == 0]] = np.round(129 + 900 * u[which == 0])
        memory_mb[indices[which == 1]] = 110_000 + 400_000 * u[which == 1]
        dhrystone[indices[which == 2]] = 1.1e5 + 9e5 * u[which == 2]
        whetstone[indices[which == 3]] = 1.1e5 + 9e5 * u[which == 3]
        disk_avail[indices[which == 4]] = 1.1e4 + 9e4 * u[which == 4]


def generate_trace(
    config: "TraceConfig | None" = None,
    rng: "np.random.Generator | None" = None,
) -> TraceDataset:
    """Convenience wrapper: synthesise a trace with the given (or default) config.

    ``rng`` overrides the config-seeded stream with a caller-owned
    generator (see :meth:`SyntheticTraceGenerator.generate`).
    """
    return SyntheticTraceGenerator(config).generate(rng)
