"""The queryable synthetic trace table.

A :class:`TraceDataset` is the stand-in for the public SETI@home host file:
one row per host with creation/last-contact times, the five modelled
resources, platform metadata and GPU information.  The paper's analyses all
reduce to "statistics of the hosts active at time T"; :meth:`active_mask`
implements the paper's activity definition (first contact before T, most
recent contact after T) and :meth:`snapshot` materialises the corresponding
resource population.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.hosts.population import HostPopulation
from repro.hosts import platforms as _platforms
from repro.timeutil import DAYS_PER_YEAR


@dataclass(frozen=True)
class TraceDataset:
    """Column-oriented host trace (one row per host)."""

    #: Host identifiers (dense ints).
    host_id: np.ndarray
    #: First contact, calendar-year float.
    created: np.ndarray
    #: Most recent contact, calendar-year float (censored at the trace end).
    last_contact: np.ndarray
    #: True where the host was still alive at the trace end (lifetime censored).
    censored: np.ndarray

    #: Resources (frozen at creation; see DESIGN.md §5).
    cores: np.ndarray
    memory_mb: np.ndarray
    dhrystone: np.ndarray
    whetstone: np.ndarray
    disk_avail_gb: np.ndarray
    disk_total_gb: np.ndarray

    #: Platform metadata.
    cpu_family: np.ndarray
    os_name: np.ndarray

    #: GPU adoption threshold: the host reports a GPU at date T when
    #: ``gpu_uniform < gpu_fraction_at(T)`` (monotone adoption).
    gpu_uniform: np.ndarray
    gpu_type: np.ndarray
    gpu_memory_mb: np.ndarray

    #: Ground-truth marker for injected measurement corruption.
    corrupt: np.ndarray

    def __post_init__(self) -> None:
        n = np.asarray(self.host_id).size
        for field in fields(self):
            column = np.asarray(getattr(self, field.name))
            if column.ndim != 1 or column.size != n:
                raise ValueError(
                    f"column {field.name!r} has shape {column.shape}; expected ({n},)"
                )
            object.__setattr__(self, field.name, column)

    def __len__(self) -> int:
        return int(self.host_id.size)

    # -- activity ---------------------------------------------------------

    def active_mask(self, when: float) -> np.ndarray:
        """Hosts active at calendar year ``when`` (§V-A definition)."""
        return (self.created <= when) & (self.last_contact >= when)

    def active_count(self, when: float) -> int:
        """Number of active hosts at ``when``."""
        return int(self.active_mask(when).sum())

    def active_index(self, when: float) -> np.ndarray:
        """Row indices of hosts active at ``when``."""
        return np.flatnonzero(self.active_mask(when))

    # -- views --------------------------------------------------------------

    def subset(self, mask: np.ndarray) -> "TraceDataset":
        """Dataset restricted to rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(f"mask shape {mask.shape} does not match {len(self)} hosts")
        return TraceDataset(
            **{f.name: getattr(self, f.name)[mask] for f in fields(self)}
        )

    def snapshot(self, when: float) -> HostPopulation:
        """Resource population of the hosts active at ``when``."""
        mask = self.active_mask(when)
        return HostPopulation(
            cores=self.cores[mask],
            memory_mb=self.memory_mb[mask],
            dhrystone=self.dhrystone[mask],
            whetstone=self.whetstone[mask],
            disk_gb=self.disk_avail_gb[mask],
        )

    # -- lifetimes (Fig 1 / Fig 3) -------------------------------------------

    def lifetime_days(self) -> np.ndarray:
        """Observed lifetime of every host in days (censored at trace end)."""
        return (self.last_contact - self.created) * DAYS_PER_YEAR

    def lifetime_sample(
        self, exclude_created_after: "float | None" = None
    ) -> np.ndarray:
        """Lifetimes for distribution fitting, with the paper's exclusion.

        Fig 1 excludes hosts that first connected after July 1 2010 to avoid
        biasing the distribution towards short lifetimes.
        """
        mask = np.ones(len(self), dtype=bool)
        if exclude_created_after is not None:
            mask &= self.created <= exclude_created_after
        return self.lifetime_days()[mask]

    def mean_lifetime_by_cohort(
        self, cohort_edges: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Average observed lifetime per creation cohort (Fig 3).

        Returns (cohort_centres, mean_lifetime_days); empty cohorts yield
        NaN means.
        """
        edges = np.asarray(cohort_edges, dtype=float)
        if edges.size < 2:
            raise ValueError("need at least two cohort edges")
        lifetimes = self.lifetime_days()
        centres = 0.5 * (edges[:-1] + edges[1:])
        means = np.full(centres.size, np.nan)
        idx = np.digitize(self.created, edges) - 1
        for i in range(centres.size):
            in_cohort = idx == i
            if np.any(in_cohort):
                means[i] = float(lifetimes[in_cohort].mean())
        return centres, means

    # -- GPUs (Table VII / Fig 10) ---------------------------------------------

    def gpu_mask(self, when: float) -> np.ndarray:
        """Hosts that are active *and* report a GPU at ``when``."""
        fraction = _platforms.gpu_fraction_at(when)
        return self.active_mask(when) & (self.gpu_uniform < fraction)

    def gpu_share(self, when: float) -> float:
        """Fraction of active hosts reporting a GPU at ``when``."""
        active = self.active_mask(when)
        n_active = int(active.sum())
        if n_active == 0:
            return 0.0
        return float(self.gpu_mask(when).sum() / n_active)

    # -- composition (Tables I/II) -----------------------------------------------

    def label_shares(self, column: str, when: float) -> dict[str, float]:
        """Share of each label among active hosts (``cpu_family``/``os_name``)."""
        if column not in {"cpu_family", "os_name", "gpu_type"}:
            raise KeyError(f"not a label column: {column!r}")
        labels = getattr(self, column)[self.active_mask(when)]
        if labels.size == 0:
            return {}
        unique, counts = np.unique(labels.astype(str), return_counts=True)
        return {
            label: float(count / labels.size) for label, count in zip(unique, counts)
        }
