"""Solving cohort arrival intensities for a target active-population curve.

The paper's active-host count stays inside a 300–350 k band (Fig 2, top
panel) while individual hosts churn with ≈ 71-day median lifetimes.  Given a
target curve ``N(t)`` and the lifetime survival function ``S(age; cohort)``,
the expected active count is the discrete renewal sum

    N(t_j) = Σ_{c ≤ j} A_c · S(t_j − m_c; m_c)

over monthly cohorts with arrival counts ``A_c`` centred at ``m_c``.  Because
``S`` is triangular in (j, c) the system solves by forward substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Signature of the survival callback: (age_years, creation_year) -> P(alive).
SurvivalFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ArrivalSchedule:
    """Monthly cohort arrival intensities solving the target curve."""

    #: Cohort midpoints, calendar years.
    cohort_times: np.ndarray
    #: Expected arrivals per cohort (continuous intensities, ≥ 0).
    arrivals: np.ndarray
    #: Cohort width in years (uniform grid).
    cohort_width: float

    @property
    def total_arrivals(self) -> float:
        """Total expected number of hosts over the whole trace."""
        return float(self.arrivals.sum())

    def alive_fractions(self, when: float, survival: SurvivalFn) -> np.ndarray:
        """Expected alive fraction of each cohort at ``when``.

        Hosts arrive uniformly within their cohort month, so a cohort whose
        month contains ``when`` is only partially present: the arrived share
        is ``(when - cohort_start)/width`` with mean age half that.
        """
        half = self.cohort_width / 2
        starts = self.cohort_times - half
        elapsed = when - starts
        fractions = np.zeros_like(self.cohort_times)

        full = elapsed >= self.cohort_width
        if np.any(full):
            ages = when - self.cohort_times[full]
            fractions[full] = survival(ages, self.cohort_times[full])

        partial = (elapsed > 0) & ~full
        if np.any(partial):
            arrived = elapsed[partial] / self.cohort_width
            mean_age = elapsed[partial] / 2
            fractions[partial] = arrived * survival(
                mean_age, self.cohort_times[partial]
            )
        return fractions

    def expected_active(self, when: float, survival: SurvivalFn) -> float:
        """Expected active count at ``when`` implied by the schedule."""
        return float(np.dot(self.arrivals, self.alive_fractions(when, survival)))


def solve_arrival_schedule(
    start: float,
    end: float,
    target: Callable[[float], float],
    survival: SurvivalFn,
    months_per_cohort: int = 1,
) -> ArrivalSchedule:
    """Forward-substitution solve of the renewal equation on a monthly grid.

    Parameters
    ----------
    start, end:
        Calendar-year bounds of the trace.
    target:
        Target active-host count as a function of calendar year.
    survival:
        Vectorised ``P(lifetime > age)`` taking (ages_years, creation_years).
    months_per_cohort:
        Cohort granularity (1 = monthly).

    Notes
    -----
    If churn ever exceeds the target's decline the solver floors the cohort
    at zero arrivals — the population then undershoots the target until
    attrition catches up, exactly as a real project would.
    """
    if end <= start:
        raise ValueError("end must come after start")
    width = months_per_cohort / 12.0
    n_cohorts = int(np.ceil((end - start) / width))
    midpoints = start + width * (np.arange(n_cohorts) + 0.5)
    arrivals = np.zeros(n_cohorts)

    for j in range(n_cohorts):
        t_j = midpoints[j]
        carried = 0.0
        if j > 0:
            ages = t_j - midpoints[:j]
            carried = float(
                np.dot(arrivals[:j], survival(ages, midpoints[:j]))
            )
        deficit = target(t_j) - carried
        if deficit <= 0:
            continue
        # Hosts arrive uniformly within the month, so at the cohort's own
        # midpoint only half have arrived, with mean age width/4; the
        # arrivals needed to close the deficit are discounted accordingly.
        own_survival = 0.5 * float(
            survival(np.array([width / 4]), np.array([t_j]))[0]
        )
        arrivals[j] = deficit / max(own_survival, 1e-9)

    return ArrivalSchedule(
        cohort_times=midpoints, arrivals=arrivals, cohort_width=width
    )
