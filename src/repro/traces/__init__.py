"""Synthetic SETI@home-like trace substrate.

The paper's raw material is the public SETI@home host file: 2.7 M hosts
measured between 2006 and 2010.  That file is not available offline, so this
subpackage synthesises a statistically equivalent trace (see DESIGN.md §2 and
§5 for the substitution argument):

* :mod:`~repro.traces.config` — all knobs of the synthetic world.
* :mod:`~repro.traces.lifetimes` — Weibull lifetimes with the observed
  creation-date decay (Figs 1 and 3).
* :mod:`~repro.traces.arrivals` — solves cohort arrival intensities so the
  active-host count tracks the paper's 300–350 k band (Fig 2 top panel).
* :mod:`~repro.traces.calibration` — age-mixing compensation so *population*
  statistics match the paper's trend laws even though each host's resources
  are frozen at creation.
* :mod:`~repro.traces.synthesis` — draws the hosts themselves (resources,
  platforms, GPUs, corruption).
* :mod:`~repro.traces.dataset` — the queryable trace table.
* :mod:`~repro.traces.io` — CSV(.gz) persistence.
"""

from repro.traces.arrivals import solve_arrival_schedule
from repro.traces.calibration import CohortCalibration
from repro.traces.config import TraceConfig
from repro.traces.dataset import TraceDataset
from repro.traces.io import read_trace_csv, write_trace_csv
from repro.traces.lifetimes import LifetimeModel
from repro.traces.synthesis import SyntheticTraceGenerator, generate_trace

__all__ = [
    "CohortCalibration",
    "LifetimeModel",
    "SyntheticTraceGenerator",
    "TraceConfig",
    "TraceDataset",
    "generate_trace",
    "read_trace_csv",
    "solve_arrival_schedule",
    "write_trace_csv",
]
